"""Micro-batcher: coalesce compatible requests into one device launch.

The paper's central batched observation is that one device-resident
launch sequence amortises its fixed cost (kernel launches, final sync)
over every row of the batch — per-query time collapses once requests
ride together.  The batcher groups queued requests by
:class:`GroupKey` (problems must share (n, k, dtype, largest) to stack
into one ``(batch, n)`` buffer) and flushes a group when either

* it reaches ``max_batch`` requests (**size trigger**), or
* its oldest request has waited ``max_delay_s`` (**deadline trigger**),
  bounding the latency cost of waiting for company.
"""

from __future__ import annotations

from dataclasses import dataclass

from .request import Request


def quality_class(min_recall: float | None) -> float | None:
    """Quantised recall-target bucket for batching and cache keying.

    Requests in the same bucket share a dispatch plan (and may share a
    launch); quantising to 1e-3 keeps the number of distinct groups
    bounded under jittery per-request targets.  None — exact traffic —
    is its own class, never mixed with approximate-eligible requests.
    """
    if min_recall is None:
        return None
    return round(float(min_recall), 3)


@dataclass(frozen=True)
class GroupKey:
    """Everything two requests must agree on to share a launch."""

    n: int
    k: int
    dtype: str
    largest: bool
    #: quantised recall-target class (None = exact-only traffic).  Two
    #: requests with different quality classes may need different plans
    #: (exact vs approximate), so they never share a batch.
    quality: float | None = None

    @classmethod
    def of(cls, request: Request) -> "GroupKey":
        return cls(
            n=request.n,
            k=request.k,
            dtype=str(request.data.dtype),
            largest=request.largest,
            quality=quality_class(request.min_recall),
        )


class MicroBatcher:
    """Groups pending requests and decides when each group flushes."""

    def __init__(self, *, max_batch: int, max_delay_s: float) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self._groups: dict[GroupKey, list[Request]] = {}
        #: optional ``observer(event, key, pending)`` callback fired after
        #: every mutation ("add" / "pop" / "drop") — the service hangs its
        #: queue-depth telemetry here so depth is sampled at every
        #: admission and flush, not just between batches
        self.observer = None

    def _notify(self, event: str, key: GroupKey) -> None:
        if self.observer is not None:
            self.observer(event, key, self.pending)

    # -- state ---------------------------------------------------------- #
    def __len__(self) -> int:
        return sum(len(g) for g in self._groups.values())

    @property
    def pending(self) -> int:
        """Queued requests across all groups (the queue depth gauge)."""
        return len(self)

    def add(self, request: Request) -> GroupKey:
        key = GroupKey.of(request)
        self._groups.setdefault(key, []).append(request)
        self._notify("add", key)
        return key

    # -- flush policy --------------------------------------------------- #
    def size_ready(self) -> GroupKey | None:
        """A group at/over ``max_batch``, if any (size trigger)."""
        for key, group in self._groups.items():
            if len(group) >= self.max_batch:
                return key
        return None

    def next_flush_time(self) -> tuple[float, GroupKey] | None:
        """Earliest (deadline, group) at which a group must flush.

        The deadline of a group is its oldest arrival plus
        ``max_delay_s``; the event loop sleeps (in virtual time) until
        the soonest one unless a size trigger fires first.
        """
        best: tuple[float, GroupKey] | None = None
        for key, group in self._groups.items():
            deadline = min(r.arrival_s for r in group) + self.max_delay_s
            if best is None or deadline < best[0]:
                best = (deadline, key)
        return best

    def due(self, now_s: float) -> GroupKey | None:
        """A group whose delay deadline has passed at ``now_s``, if any."""
        nxt = self.next_flush_time()
        if nxt is not None and nxt[0] <= now_s:
            return nxt[1]
        return None

    def pop(self, key: GroupKey) -> list[Request]:
        """Remove and return up to ``max_batch`` requests of a group, in
        arrival order; the remainder (if any) stays queued."""
        group = self._groups.pop(key)
        group.sort(key=lambda r: (r.arrival_s, r.rid))
        take, rest = group[: self.max_batch], group[self.max_batch :]
        if rest:
            self._groups[key] = rest
        self._notify("pop", key)
        return take

    def drop(self, key: GroupKey, rid: int) -> Request | None:
        """Remove one request (e.g. it timed out while queued)."""
        group = self._groups.get(key)
        if not group:
            return None
        for i, request in enumerate(group):
            if request.rid == rid:
                group.pop(i)
                if not group:
                    del self._groups[key]
                self._notify("drop", key)
                return request
        return None

    def groups(self) -> dict[GroupKey, list[Request]]:
        return self._groups
