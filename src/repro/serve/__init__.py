"""Sharded, batched top-k serving (see docs/serving.md).

The layer users actually call in a production deployment: an
asynchronous-style front end over the simulated-GPU algorithm roster
that

* **micro-batches** concurrent single-query requests (size- and
  deadline-triggered flushes) to exploit the paper's batched regime,
  where one device-resident launch set amortises over the whole batch
  (:mod:`.batcher`);
* **shards** large-N problems across simulated devices with per-shard
  selection and a hierarchical k-way merge of (value, index) candidates,
  the Dr. Top-k delegate decomposition (:mod:`.sharder`, :mod:`.merge`);
* **caches** results and cost-model dispatch plans in an LRU keyed on
  (data fingerprint, n, k, distribution hints) so the ``auto``
  dispatcher's ranking is reused across requests (:mod:`.cache`);
* applies **backpressure** — bounded queues, per-request deadlines and
  load shedding — reporting served / shed / timeout outcomes with full
  ``serve.*`` telemetry (:mod:`.service`);
* ships a **closed-loop load generator** and latency report for
  ``repro-topk serve-bench`` (:mod:`.loadgen`).

All timing is in the repository's simulated-time domain: arrivals are
drawn on a virtual clock and service times come from the simulated
device, so a 2-second, 200-QPS load test runs deterministically in
milliseconds of host time.
"""

from .batcher import GroupKey, MicroBatcher
from .cache import DispatchPlan, LRUCache, ServeCache, fingerprint
from .loadgen import (
    LoadSpec,
    SequentialBaseline,
    ServeBenchReport,
    build_requests,
    poisson_arrivals,
    run_serve_bench,
    sequential_baseline,
    uniform_arrivals,
)
from .merge import hierarchical_merge, merge_pair
from .request import Outcome, Request
from .service import BatchRecord, ServeConfig, ServeStats, TopKService
from .sharder import shard_bounds, sharded_topk

__all__ = [
    "BatchRecord",
    "DispatchPlan",
    "GroupKey",
    "LRUCache",
    "LoadSpec",
    "MicroBatcher",
    "Outcome",
    "Request",
    "SequentialBaseline",
    "ServeBenchReport",
    "ServeCache",
    "ServeConfig",
    "ServeStats",
    "TopKService",
    "build_requests",
    "fingerprint",
    "hierarchical_merge",
    "merge_pair",
    "poisson_arrivals",
    "run_serve_bench",
    "sequential_baseline",
    "shard_bounds",
    "sharded_topk",
    "uniform_arrivals",
]
