"""Sharded, batched top-k serving (see docs/serving.md).

The layer users actually call in a production deployment: an
asynchronous-style front end over the simulated-GPU algorithm roster
that

* **micro-batches** concurrent single-query requests (size- and
  deadline-triggered flushes) to exploit the paper's batched regime,
  where one device-resident launch set amortises over the whole batch
  (:mod:`.batcher`);
* **shards** large-N problems across simulated devices with per-shard
  selection and a hierarchical k-way merge of (value, index) candidates,
  the Dr. Top-k delegate decomposition (:mod:`.sharder`, :mod:`.merge`);
* **caches** results and cost-model dispatch plans in an LRU keyed on
  (data fingerprint, n, k, distribution hints) so the ``auto``
  dispatcher's ranking is reused across requests (:mod:`.cache`);
* applies **backpressure** — bounded queues, per-request deadlines and
  load shedding — reporting served / degraded / shed / timeout / failed
  outcomes with full ``serve.*`` telemetry (:mod:`.service`);
* **survives faults** — deterministic injected chaos
  (:mod:`repro.faults`, docs/faults.md) is absorbed by per-shard
  retries, hedged duplicates, a result-cache circuit breaker and
  degraded-mode merges with recall bounds (:mod:`.sharder`,
  :mod:`.service`);
* ships a **closed-loop load generator** and latency report for
  ``repro-topk serve-bench`` (:mod:`.loadgen`).

All timing is in the repository's simulated-time domain: arrivals are
drawn on a virtual clock and service times come from the simulated
device, so a 2-second, 200-QPS load test runs deterministically in
milliseconds of host time.
"""

from .batcher import GroupKey, MicroBatcher, quality_class
from .cache import DispatchPlan, LRUCache, ServeCache, fingerprint
from .loadgen import (
    LoadSpec,
    SequentialBaseline,
    ServeBenchReport,
    build_requests,
    poisson_arrivals,
    run_serve_bench,
    sequential_baseline,
    uniform_arrivals,
)
from .merge import hierarchical_merge, merge_pair
from .request import OUTCOMES, Outcome, Request
from .service import BatchRecord, ServeConfig, ServeStats, TopKService
from .sharder import AllShardsLost, shard_bounds, sharded_topk

__all__ = [
    "AllShardsLost",
    "BatchRecord",
    "OUTCOMES",
    "DispatchPlan",
    "GroupKey",
    "LRUCache",
    "LoadSpec",
    "MicroBatcher",
    "Outcome",
    "Request",
    "SequentialBaseline",
    "ServeBenchReport",
    "ServeCache",
    "ServeConfig",
    "ServeStats",
    "TopKService",
    "build_requests",
    "fingerprint",
    "hierarchical_merge",
    "merge_pair",
    "poisson_arrivals",
    "quality_class",
    "run_serve_bench",
    "sequential_baseline",
    "shard_bounds",
    "sharded_topk",
    "uniform_arrivals",
]
