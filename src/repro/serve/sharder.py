"""Shard large-N selections across simulated devices and merge.

Splits each problem row into contiguous chunks, runs an exact top-k per
chunk on its own simulated device (fan-out via
:func:`repro.exec.fanout`, the engine's generic primitive), offsets the
per-shard indices back to global positions, and tree-merges the
candidates (:mod:`.merge`).  The coordinator device models the
multi-device critical path: shards execute concurrently, so its clock
starts at the *slowest* shard and then pays one merge kernel per tree
level plus the final synchronisation — the same accounting shape as the
paper's multi-GPU scaling experiment (Fig. 12).

Failure handling (docs/faults.md): with a
:class:`~repro.faults.FaultInjector` installed, each shard attempt can
fail (``shard_failure``) or come back slow (``straggler``).  Failed
attempts are retried with capped exponential backoff
(:class:`~repro.faults.RetryPolicy`); stragglers past a latency quantile
of their siblings get a hedged duplicate
(:class:`~repro.faults.HedgePolicy`) racing the original.  A shard that
exhausts its retries is *lost*: the survivors are merged anyway and the
result is returned ``degraded=True`` with the
:func:`~repro.faults.recall_bound` contract attached.  With no injector
every seam is a strict no-op.
"""

from __future__ import annotations

import numpy as np

from ..algos import TopKResult, get_algorithm
from ..api import resolve_device
from ..device import Device, streaming_grid
from ..exec import fanout
from ..faults import HedgePolicy, RetryPolicy, recall_bound
from ..perf import calibration as cal
from .merge import hierarchical_merge

#: comparator-ish FLOPs charged per merged candidate per level
_MERGE_OPS_PER_ELEM = 4.0


class AllShardsLost(RuntimeError):
    """Every shard of a selection failed irrecoverably; there is no
    surviving data to degrade onto — the request must fail upstream."""


def shard_bounds(n: int, shards: int) -> list[tuple[int, int]]:
    """Near-equal contiguous [start, end) chunks covering ``n`` elements.

    >>> shard_bounds(10, 4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > n:
        raise ValueError(f"cannot cut {n} elements into {shards} shards")
    bounds = []
    start = 0
    for s in range(shards):
        size = n // shards + (1 if s < n % shards else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def sharded_topk(
    data: np.ndarray,
    k: int,
    *,
    shards: int,
    algo: str = "auto",
    device=None,
    largest: bool = False,
    seed: int = 0,
    params: dict | None = None,
    workers: int = 1,
    injector=None,
    retry: RetryPolicy | None = None,
    hedge: HedgePolicy | None = None,
    fault_scope: str = "",
) -> TopKResult:
    """Top-k by per-shard selection + hierarchical merge.

    Semantically identical to a single-shot :func:`repro.topk` call —
    byte-identical values/indices over unique-valued data, an equal-value
    top-k otherwise (pinned by tests/test_serve.py) — but executed as
    ``shards`` independent sub-selections on ``shards`` simulated
    devices.  ``workers`` > 1 additionally spreads the host-side numpy
    work over threads; it never changes the result.

    ``injector`` enables the fault seams described in the module
    docstring; ``fault_scope`` namespaces this call's injection decisions
    (the service passes its batch id so two batches draw independently).
    With faults a shard can be lost after ``retry.retries`` re-attempts,
    in which case the merged result carries ``degraded=True`` and the
    documented ``recall_bound``; :class:`AllShardsLost` is raised only
    when *no* shard survives.

    Returns a :class:`TopKResult` whose ``device`` is the coordinator:
    its elapsed time is ``max(effective shard times) + merge + sync``.
    """
    data = np.asarray(data)
    squeeze = data.ndim == 1
    if squeeze:
        data = data[None, :]
    if data.ndim != 2:
        raise ValueError(
            f"data must be 1-d or 2-d (batch, n), got shape {data.shape}"
        )
    n = data.shape[1]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n={n}], got k={k}")
    run_device, spec = resolve_device(device)
    if run_device is not None:
        raise ValueError(
            "sharded_topk coordinates its own devices; pass a GPUSpec or "
            "preset name, not an existing Device"
        )
    bounds = shard_bounds(n, shards)
    retry = retry or RetryPolicy()
    hedge = hedge or HedgePolicy()

    def run_shard(indexed_bound: tuple[int, tuple[int, int]]):
        """One shard's selection, through the fault seams.

        Returns ``(values, indices, effective_time, clean_time, retries)``
        or ``None`` when the shard is lost (retries exhausted).
        """
        shard_id, (start, end) = indexed_bound
        shard_k = min(k, end - start)
        algorithm = get_algorithm(algo, params=params)

        def attempt_once():
            result = algorithm.select(
                np.ascontiguousarray(data[:, start:end]),
                shard_k,
                spec=spec,
                largest=largest,
                seed=seed,
            )
            return result.values, result.indices + start, result.time

        if injector is None:
            values, indices, time = attempt_once()
            return values, indices, time, time, 0

        elapsed = 0.0
        for attempt in range(retry.attempts):
            values, indices, time = attempt_once()
            failed = injector.decide(
                "shard_failure",
                "serve.shard",
                fault_scope,
                f"shard={shard_id}",
                f"attempt={attempt}",
            )
            if failed is None:
                clean = time
                straggling = injector.decide(
                    "straggler",
                    "serve.shard",
                    fault_scope,
                    f"shard={shard_id}",
                    f"attempt={attempt}",
                )
                if straggling is not None:
                    time = time * straggling.factor
                return values, indices, elapsed + time, clean, attempt
            # the attempt crashed: charge its full runtime plus the
            # capped-exponential backoff before the next try
            elapsed += time
            if attempt < retry.attempts - 1:
                elapsed += retry.backoff(attempt)
        return None  # lost: every attempt failed

    shard_runs = fanout(run_shard, list(enumerate(bounds)), workers=workers)
    survivors = [
        (i, run) for i, run in enumerate(shard_runs) if run is not None
    ]
    if not survivors:
        raise AllShardsLost(
            f"all {shards} shards failed irrecoverably "
            f"(retries={retry.retries}, scope={fault_scope!r})"
        )
    lost = [i for i, run in enumerate(shard_runs) if run is None]
    retries_total = sum(run[4] for _, run in survivors)

    # hedged duplicate dispatch: anything past the sibling-quantile
    # threshold races a clean duplicate launched at the threshold.  With
    # no inflation min(t, threshold + t) == t, so this is a no-op on a
    # healthy run.
    times = [run[2] for _, run in survivors]
    hedges = 0
    effective_times = []
    threshold = hedge.threshold(times) if injector is not None else None
    for _, run in survivors:
        time, clean = run[2], run[3]
        if threshold is not None and time > threshold:
            hedged = min(time, threshold + clean)
            if hedged < time:
                hedges += 1
                time = hedged
        effective_times.append(time)

    partials = [(run[0], run[1]) for _, run in survivors]
    values, indices, levels = hierarchical_merge(partials, k, largest=largest)

    # coordinator: shards ran concurrently, so the critical path starts at
    # the slowest shard, then pays the merge tree and the final sync
    coordinator = Device(spec)
    slowest = max(effective_times)
    coordinator.cpu_time = coordinator.gpu_time = slowest
    batch = data.shape[0]
    candidates = sum(p[0].shape[1] for p in partials) * batch
    elem_bytes = 8.0 + data.dtype.itemsize  # key + index per candidate
    for level in range(levels):
        merged = max(1, candidates >> level)
        # one fused grid launch merges every problem's candidates at this
        # level; the per-problem segment bookkeeping is a fixed serial
        # chain that does not shrink with device scale
        coordinator.launch_kernel(
            f"shard_merge_l{level}",
            grid_blocks=streaming_grid(spec, merged),
            block_threads=256,
            bytes_read=elem_bytes * merged,
            bytes_written=elem_bytes * max(1, merged // 2),
            flops=_MERGE_OPS_PER_ELEM * merged,
            fixed_dependent_cycles=batch * cal.MERGE_PER_PROBLEM_CYCLES,
            span_args={"level": level, "candidates": merged, "batch": batch},
        )
    coordinator.synchronize("sync_result")
    # merge + sync cost = everything the coordinator paid past the
    # slowest shard; exported so request traces can split the span
    merge_s = max(0.0, float(coordinator.elapsed) - float(slowest))

    degraded = bool(lost)
    bound = None
    # whether each shard ran its batch in fused launches (one grid per
    # pass) or replayed per-row — callers budgeting coordinator work need
    # to know which launch-cost regime the shards were in
    meta: dict = {
        "batched_execution": bool(
            getattr(get_algorithm(algo, params=params), "batched_execution", False)
        ),
        # per-surviving-shard effective times (post retry/straggler/hedge)
        # keyed by shard id, plus the merge-tree tail — the trace lanes
        # reconstruct the fan-out/fan-in shape from these
        "shard_times_s": {
            shard_id: float(t)
            for (shard_id, _), t in zip(survivors, effective_times)
        },
        "merge_s": merge_s,
    }
    if injector is not None:
        meta.update(retries=retries_total, hedges=hedges, shards_lost=len(lost))
    if degraded:
        n_lost = sum(bounds[i][1] - bounds[i][0] for i in lost)
        coverage, bound = recall_bound(k, n, n_lost)
        meta.update(coverage=coverage, lost_shards=lost, n_lost=n_lost)

    if squeeze:
        values = values[0]
        indices = indices[0]
    k_got = values.shape[-1]
    label = f"sharded({algo}x{shards})"
    if degraded:
        label += f"[degraded -{len(lost)}]"
    return TopKResult(
        values=values[..., :k_got],
        indices=indices[..., :k_got],
        algo=label,
        device=coordinator,
        degraded=degraded,
        recall_bound=bound,
        exact=not degraded,
        meta=meta,
    )
