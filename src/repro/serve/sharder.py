"""Shard large-N selections across simulated devices and merge.

Splits each problem row into contiguous chunks, runs an exact top-k per
chunk on its own simulated device (fan-out via
:func:`repro.exec.fanout`, the engine's generic primitive), offsets the
per-shard indices back to global positions, and tree-merges the
candidates (:mod:`.merge`).  The coordinator device models the
multi-device critical path: shards execute concurrently, so its clock
starts at the *slowest* shard and then pays one merge kernel per tree
level plus the final synchronisation — the same accounting shape as the
paper's multi-GPU scaling experiment (Fig. 12).
"""

from __future__ import annotations

import numpy as np

from ..algos import TopKResult, get_algorithm
from ..api import resolve_device
from ..device import Device, streaming_grid
from ..exec import fanout
from .merge import hierarchical_merge

#: comparator-ish FLOPs charged per merged candidate per level
_MERGE_OPS_PER_ELEM = 4.0


def shard_bounds(n: int, shards: int) -> list[tuple[int, int]]:
    """Near-equal contiguous [start, end) chunks covering ``n`` elements.

    >>> shard_bounds(10, 4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > n:
        raise ValueError(f"cannot cut {n} elements into {shards} shards")
    bounds = []
    start = 0
    for s in range(shards):
        size = n // shards + (1 if s < n % shards else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def sharded_topk(
    data: np.ndarray,
    k: int,
    *,
    shards: int,
    algo: str = "auto",
    device=None,
    largest: bool = False,
    seed: int = 0,
    params: dict | None = None,
    workers: int = 1,
) -> TopKResult:
    """Top-k by per-shard selection + hierarchical merge.

    Semantically identical to a single-shot :func:`repro.topk` call —
    byte-identical values/indices over unique-valued data, an equal-value
    top-k otherwise (pinned by tests/test_serve.py) — but executed as
    ``shards`` independent sub-selections on ``shards`` simulated
    devices.  ``workers`` > 1 additionally spreads the host-side numpy
    work over threads; it never changes the result.

    Returns a :class:`TopKResult` whose ``device`` is the coordinator:
    its elapsed time is ``max(shard times) + merge + sync``.
    """
    data = np.asarray(data)
    squeeze = data.ndim == 1
    if squeeze:
        data = data[None, :]
    if data.ndim != 2:
        raise ValueError(
            f"data must be 1-d or 2-d (batch, n), got shape {data.shape}"
        )
    n = data.shape[1]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n={n}], got k={k}")
    run_device, spec = resolve_device(device)
    if run_device is not None:
        raise ValueError(
            "sharded_topk coordinates its own devices; pass a GPUSpec or "
            "preset name, not an existing Device"
        )
    bounds = shard_bounds(n, shards)

    def run_shard(bound: tuple[int, int]):
        start, end = bound
        shard_k = min(k, end - start)
        algorithm = get_algorithm(algo, params=params)
        result = algorithm.select(
            np.ascontiguousarray(data[:, start:end]),
            shard_k,
            spec=spec,
            largest=largest,
            seed=seed,
        )
        return result.values, result.indices + start, result.time

    shard_runs = fanout(run_shard, bounds, workers=workers)
    partials = [(values, indices) for values, indices, _ in shard_runs]
    values, indices, levels = hierarchical_merge(partials, k, largest=largest)

    # coordinator: shards ran concurrently, so the critical path starts at
    # the slowest shard, then pays the merge tree and the final sync
    coordinator = Device(spec)
    slowest = max(time for _, _, time in shard_runs)
    coordinator.cpu_time = coordinator.gpu_time = slowest
    candidates = sum(p[0].shape[1] for p in partials) * data.shape[0]
    elem_bytes = 8.0 + data.dtype.itemsize  # key + index per candidate
    for level in range(levels):
        merged = max(1, candidates >> level)
        coordinator.launch_kernel(
            f"shard_merge_l{level}",
            grid_blocks=streaming_grid(spec, merged),
            block_threads=256,
            bytes_read=elem_bytes * merged,
            bytes_written=elem_bytes * max(1, merged // 2),
            flops=_MERGE_OPS_PER_ELEM * merged,
            span_args={"level": level, "candidates": merged},
        )
    coordinator.synchronize("sync_result")

    if squeeze:
        values = values[0]
        indices = indices[0]
    return TopKResult(
        values=values,
        indices=indices,
        algo=f"sharded({algo}x{shards})",
        device=coordinator,
    )
