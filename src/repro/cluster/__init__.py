"""Simulated multi-node cluster serving (docs/cluster.md).

``repro.serve`` is one virtual node; this package replicates it:
N :class:`~repro.serve.TopKService` replicas behind a
:class:`ClusterRouter` with pluggable placement
(consistent-hash / least-loaded / locality-aware), R-way replicated
data partitions, quorum dispatch with hedged stragglers, and a
cross-node hierarchical (priority-key, index) merge — byte-identical to
a single-shot ``repro.topk()`` on a healthy cluster, recall-bounded
degraded answers under node loss (``node_crash`` / ``node_partition``
fault kinds, seeded through :mod:`repro.faults` so workers=1 ==
workers=N holds cluster-wide).

Pinned by tests/test_cluster.py (differential layer) and
tests/test_cluster_chaos.py (chaos properties); swept by
``repro-topk cluster-bench`` into ``repro.bench.cluster/v1`` manifests.
"""

from .node import ClusterNode, build_nodes, node_fault_plan
from .placement import (
    PLACEMENTS,
    ConsistentHashPlacement,
    LeastLoadedPlacement,
    LocalityAwarePlacement,
    PlacementPolicy,
    make_placement,
)
from .router import (
    MERGE_PER_CANDIDATE_S,
    NET_HOP_S,
    ClusterConfig,
    ClusterRouter,
    ClusterStats,
)

__all__ = [
    "MERGE_PER_CANDIDATE_S",
    "NET_HOP_S",
    "PLACEMENTS",
    "ClusterConfig",
    "ClusterNode",
    "ClusterRouter",
    "ClusterStats",
    "ConsistentHashPlacement",
    "LeastLoadedPlacement",
    "LocalityAwarePlacement",
    "PlacementPolicy",
    "build_nodes",
    "make_placement",
    "node_fault_plan",
]
