"""One cluster member: a :class:`~repro.serve.TopKService` replica.

A :class:`ClusterNode` wraps a full single-node serving stack — its own
micro-batcher, caches, sharded executor, fault seams and telemetry — and
adds the small amount of bookkeeping the router needs: node-local
request ids for dispatched sub-queries, the set of *orphan* dispatches
(work a partitioned node executes whose reply never reaches the router),
and a node-scoped derivation of the cluster fault plan.

Nodes are completely independent once their traces are built: no shared
mutable state, so the router can run them inline or across a thread pool
(``ClusterConfig.workers``) with byte-identical results.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..faults import FaultPlan
from ..faults.plan import NODE_FAULT_KINDS
from ..serve import Outcome, Request, ServeConfig, ServeStats, TopKService

#: seed stride between per-node fault plans (any odd prime works — it
#: only needs to give each node an independent pure-hash draw stream)
_NODE_SEED_STRIDE = 7919


def node_fault_plan(plan: FaultPlan | None, node_id: int) -> FaultPlan | None:
    """The node-scoped view of a cluster fault plan.

    The ``node_crash``/``node_partition`` kinds are *router* seams — a
    node cannot observe its own unreachability — so they are stripped
    here; every other rule is kept and re-seeded per node, so e.g.
    stragglers hit replicas independently rather than in lockstep.
    """
    if plan is None:
        return None
    rules = tuple(r for r in plan.rules if r.kind not in NODE_FAULT_KINDS)
    if not rules:
        return None
    return FaultPlan(
        seed=plan.seed + _NODE_SEED_STRIDE * (node_id + 1), rules=rules
    )


class ClusterNode:
    """One replica: a TopKService plus the router's dispatch ledger."""

    def __init__(self, node_id: int, config: ServeConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.service = TopKService(config)
        self.requests: list[Request] = []
        #: node rids whose replies the router never sees (node_partition):
        #: the node pays the device time, the router fails over anyway
        self.orphans: set[int] = set()
        self.outcomes: dict[int, Outcome] = {}

    def dispatch(
        self,
        data: np.ndarray,
        k: int,
        largest: bool,
        arrival_s: float,
        *,
        deadline_s: float | None = None,
        slo: tuple | None = None,
        orphan: bool = False,
    ) -> int:
        """Enqueue one sub-query; returns its node-local rid."""
        rid = len(self.requests)
        self.requests.append(
            Request(
                rid=rid,
                data=data,
                k=k,
                largest=largest,
                arrival_s=arrival_s,
                deadline_s=deadline_s,
                slo=slo,
            )
        )
        if orphan:
            self.orphans.add(rid)
        return rid

    def run(self) -> dict[int, Outcome]:
        """Serve every dispatched sub-query to completion."""
        self.service.run(self.requests)
        self.outcomes = {o.rid: o for o in self.service.outcomes}
        return self.outcomes

    @property
    def stats(self) -> ServeStats:
        return self.service.stats

    @property
    def telemetry(self):
        return self.service.telemetry


def build_nodes(
    count: int,
    template: ServeConfig | None,
    faults: FaultPlan | None,
) -> list[ClusterNode]:
    """``count`` independent replicas from one config template."""
    template = template or ServeConfig()
    return [
        ClusterNode(
            node_id=i,
            config=dataclasses.replace(template, faults=node_fault_plan(faults, i)),
        )
        for i in range(count)
    ]
