"""The cluster front-end: route, replicate, quorum-merge.

:class:`ClusterRouter` serves the same virtual-time request traces as a
single :class:`~repro.serve.TopKService`, but across N replicas:

1. **Route** (phase 1, arrival order): each request's payload is either
   routed *whole* (small payloads and every approximate-tier request —
   partitioning an approx plan would stack two loss models) or split
   into P contiguous partitions via the sharder's
   :func:`~repro.serve.sharder.shard_bounds`.  A placement policy maps
   (payload fingerprint, partition) to a preference-ordered replica set;
   the router dispatches to the first ``dispatch_replicas`` reachable
   entries, paying ``failover_detect_s`` of virtual time for every
   crashed or partitioned replica it walks past.
2. **Execute** (phase 2): every node serves its dispatched sub-trace
   through a full, independent ``TopKService`` — micro-batching, caches,
   sharded execution and fault seams included.  Nodes share no state, so
   ``workers`` only shortens host wall-clock (workers=1 == workers=N).
3. **Merge** (phase 3, submission order): per request, the fastest
   reachable reply per partition wins; stragglers past the
   :class:`~repro.faults.HedgePolicy` threshold race a clean duplicate;
   once ``P - quorum_f`` partitions are in, the rest are dropped
   (degraded, with the :func:`~repro.faults.recall_bound` contract) and
   the survivors fold through the sharder's (priority-key, index)
   :func:`~repro.serve.merge.hierarchical_merge` — so a fully healthy
   cluster answer is byte-identical to a single-shot ``repro.topk()``.

Node unreachability comes from the ``node_crash`` / ``node_partition``
fault kinds at the ``cluster.node`` site, drawn per (node, fault epoch)
with the same pure :func:`~repro.faults.fault_draw` seeding as every
other seam: sticky rules strip the epoch (the node has left for good),
transient rules re-draw each epoch (crash + rejoin churn).  A
partitioned node still executes its sub-query — the device time is paid,
visible in that node's telemetry — but the reply is dropped and the
router fails over regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..faults import FaultPlan, HedgePolicy, recall_bound
from ..serve import Outcome, Request, ServeConfig, ServeStats
from ..serve.cache import fingerprint
from ..serve.merge import hierarchical_merge
from ..serve.sharder import shard_bounds
from ..exec.engine import fanout
from ..obs.serve import ServeTelemetry
from .node import ClusterNode, build_nodes
from .placement import PLACEMENTS, make_placement

#: simulated one-way router<->node network hop, seconds (paid once at
#: dispatch and once on the merged reply)
NET_HOP_S = 5e-5

#: per-candidate, per-merge-level cost of the router's k-way fold,
#: seconds (the coordinator-side analogue of the sharder's merge charge)
MERGE_PER_CANDIDATE_S = 2e-9


@dataclass
class ClusterConfig:
    """Topology and routing knobs of one simulated cluster."""

    #: replica count
    nodes: int = 4
    #: how many nodes hold each partition (failover breadth)
    replication: int = 2
    #: placement policy name — one of :data:`~repro.cluster.PLACEMENTS`
    placement: str = "consistent-hash"
    #: data partitions per large request; None means one per node
    partitions: int | None = None
    #: payloads below this stay whole (routed to a single replica)
    partition_min_n: int = 1 << 14
    #: proceed once ``P - quorum_f`` partitions replied; later partitions
    #: are dropped from the merge (degraded, recall-bounded).  0 waits
    #: for everything and keeps results byte-identical to single-shot.
    quorum_f: int = 0
    #: concurrently dispatch each partition to this many replicas and
    #: take the first reply (read-quorum style tail-cutting; the losers'
    #: work is wasted).  1 dispatches to the preferred replica only.
    dispatch_replicas: int = 1
    #: virtual seconds to detect an unreachable replica and fail over
    failover_detect_s: float = 1e-3
    #: width of the node-fault epoch: transient ``node_crash`` /
    #: ``node_partition`` rules draw once per (node, epoch), modelling
    #: leave/rejoin churn rather than per-packet blips
    fault_epoch_s: float = 0.25
    #: straggler-partition hedging (same contract as the sharder's)
    hedge_quantile: float = 0.5
    hedge_factor: float = 3.0
    #: cluster-level telemetry window width, virtual seconds
    window_s: float = 0.25
    #: cap on raw cluster-latency samples (histogram fallback past it)
    latency_sample_cap: int | None = 65536
    #: host threads for the node fan-out; never changes results
    workers: int = 1
    #: placement/ring seed
    seed: int = 0
    #: cluster fault plan: ``node_crash``/``node_partition`` rules fire
    #: at the router, every other kind is re-seeded per node
    faults: FaultPlan | None = None
    #: per-node service template (``faults`` field is derived, not taken
    #: from the template — pass the plan above instead)
    node_config: ServeConfig | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if not 1 <= self.replication <= self.nodes:
            raise ValueError(
                f"replication must be in [1, nodes={self.nodes}], "
                f"got {self.replication}"
            )
        if not 1 <= self.dispatch_replicas <= self.replication:
            raise ValueError(
                "dispatch_replicas must be in [1, replication="
                f"{self.replication}], got {self.dispatch_replicas}"
            )
        parts = self.partitions if self.partitions is not None else self.nodes
        if parts < 1:
            raise ValueError(f"partitions must be >= 1, got {parts}")
        if not 0 <= self.quorum_f < parts:
            raise ValueError(
                f"quorum_f must be in [0, partitions={parts}), got {self.quorum_f}"
            )
        if self.fault_epoch_s <= 0:
            raise ValueError(
                f"fault_epoch_s must be positive, got {self.fault_epoch_s}"
            )
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )


@dataclass
class ClusterStats(ServeStats):
    """Cluster-level :class:`~repro.serve.ServeStats` plus router counters.

    Inherits the full single-node surface (outcome counts, latency
    percentiles with histogram fallback, availability) so the cluster
    drops straight into :func:`repro.obs.build_serve_report`; ``busy_s``
    / ``batches`` / ``occupancies`` aggregate over every node, and
    ``capacity_rps`` is redefined against the *bottleneck* node (the
    replica that would saturate first).
    """

    #: replica count the run used
    nodes: int = 0
    #: dispatches re-routed past an unreachable replica
    failovers: int = 0
    #: partitions with no reachable replica or no surviving sub-outcome
    lost_partitions: int = 0
    #: partitions that replied after the quorum was already met
    dropped_partitions: int = 0
    #: executions whose replies were never used: orphaned work on
    #: partitioned nodes plus the losers of replica-fan-out races
    wasted_dispatches: int = 0
    #: answered requests satisfied entirely from node result caches
    cache_served: int = 0
    #: per-node simulated device-busy seconds (index = node id)
    node_busy_s: list = field(default_factory=list)
    #: per-node answered sub-request counts (index = node id)
    node_answered: list = field(default_factory=list)

    @property
    def bottleneck_busy_s(self) -> float:
        """Device-busy seconds of the most loaded node."""
        return max(self.node_busy_s, default=0.0)

    @property
    def capacity_rps(self) -> float:
        """Executed cluster requests per bottleneck-busy second.

        The cluster's throughput ceiling: how many requests it could
        answer per second with its most loaded replica at 100%
        utilisation.  Cache-only answers consume no device time and are
        excluded, mirroring the single-node definition.
        """
        busy = self.bottleneck_busy_s
        if busy <= 0:
            return 0.0
        return (self.answered - self.cache_served) / busy


@dataclass
class _SubRef:
    """One dispatched sub-query: where it went and what slice it holds."""

    node_id: int
    node_rid: int


@dataclass
class _Partition:
    """Routing record of one partition of one cluster request."""

    index: int
    start: int
    end: int
    refs: list = field(default_factory=list)
    failovers: int = 0
    extra_delay_s: float = 0.0

    @property
    def size(self) -> int:
        return self.end - self.start


class ClusterRouter:
    """N replicated ``TopKService`` nodes behind one routing front-end."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        cfg = self.config
        self.nodes: list[ClusterNode] = build_nodes(
            cfg.nodes, cfg.node_config, cfg.faults
        )
        self.placement = make_placement(
            cfg.placement,
            nodes=cfg.nodes,
            replication=cfg.replication,
            seed=cfg.seed,
        )
        self.injector = cfg.faults.injector() if cfg.faults is not None else None
        self.hedge = HedgePolicy(
            quantile=cfg.hedge_quantile, factor=cfg.hedge_factor
        )
        #: cluster-level windowed telemetry (per-node telemetry lives on
        #: each node's own service)
        self.telemetry = ServeTelemetry(window_s=cfg.window_s, trace=False)
        self.stats = ClusterStats(
            nodes=cfg.nodes, latency_hist=self.telemetry.latency_hist
        )
        self.outcomes: list[Outcome] = []
        self._routes: list[tuple[Request, list[_Partition], int]] = []

    # -- phase 1: routing ------------------------------------------------ #
    def _node_down(self, kind: str, node_id: int, t_s: float) -> bool:
        """Consult the ``cluster.node`` seam for one dispatch attempt."""
        if self.injector is None:
            return False
        epoch = int(t_s / self.config.fault_epoch_s)
        event = self.injector.decide(
            kind, "cluster.node", f"node={node_id}", f"attempt=epoch:{epoch}"
        )
        if event is not None:
            self.telemetry.on_fault(t_s, kind)
            return True
        return False

    def _partition_count(self, request: Request) -> int:
        cfg = self.config
        if request.min_recall is not None:
            # approximate-tier requests are never partitioned: stacking
            # the partition-loss model on the sampling-loss model would
            # invalidate both recall contracts (same rule as the
            # single-node sharder's never-sharded approx plans)
            return 1
        if request.n < cfg.partition_min_n:
            return 1
        parts = cfg.partitions if cfg.partitions is not None else cfg.nodes
        return max(1, min(parts, request.n))

    def _route(self, request: Request) -> list[_Partition]:
        cfg = self.config
        count = self._partition_count(request)
        bounds = shard_bounds(request.n, count) if count > 1 else [(0, request.n)]
        key = fingerprint(request.data)
        parts: list[_Partition] = []
        for p, (start, end) in enumerate(bounds):
            part = _Partition(index=p, start=start, end=end)
            data = request.data[start:end] if count > 1 else request.data
            k_p = min(request.k, end - start)
            replicas = self.placement.replica_set(key, p)
            for node_id in replicas:
                if len(part.refs) == cfg.dispatch_replicas:
                    break
                arrival = (
                    request.arrival_s + NET_HOP_S + part.extra_delay_s
                )
                if self._node_down("node_crash", node_id, request.arrival_s):
                    part.failovers += 1
                    part.extra_delay_s += cfg.failover_detect_s
                    continue
                if self._node_down("node_partition", node_id, request.arrival_s):
                    # the partitioned node does the work; the reply is lost
                    self.nodes[node_id].dispatch(
                        data,
                        k_p,
                        request.largest,
                        arrival,
                        deadline_s=request.deadline_s,
                        slo=request.slo if count == 1 else None,
                        orphan=True,
                    )
                    self.stats.wasted_dispatches += 1
                    part.failovers += 1
                    part.extra_delay_s += cfg.failover_detect_s
                    continue
                rid = self.nodes[node_id].dispatch(
                    data,
                    k_p,
                    request.largest,
                    arrival,
                    deadline_s=request.deadline_s,
                    slo=request.slo if count == 1 else None,
                )
                part.refs.append(_SubRef(node_id=node_id, node_rid=rid))
                self.placement.record(node_id, float(end - start))
            if part.failovers:
                self.stats.failovers += part.failovers
                self.telemetry.on_retry(request.arrival_s, part.failovers)
            parts.append(part)
        return parts

    # -- phase 3: merging ------------------------------------------------ #
    def _terminal_failure(
        self, request: Request, parts: list[_Partition], sub_statuses: list[str]
    ) -> Outcome:
        """No quorum: exactly one terminal verdict, never a silent drop."""
        if "timeout" in sub_statuses:
            status = "timeout"
        elif sub_statuses and all(s == "shed" for s in sub_statuses):
            status = "shed"
        else:
            status = "failed"
        delay = max((p.extra_delay_s for p in parts), default=0.0)
        finish = request.arrival_s + delay + 2 * NET_HOP_S
        lost = sum(1 for p in parts if not p.refs)
        return Outcome(
            rid=request.rid,
            status=status,
            finish_s=finish,
            arrival_s=request.arrival_s,
            error=(
                f"quorum not met: {lost}/{len(parts)} partitions had no "
                f"reachable replica, sub-statuses {sorted(set(sub_statuses))}"
            ),
        )

    def _merge_request(
        self, request: Request, parts: list[_Partition], count: int
    ) -> Outcome:
        cfg = self.config
        arrival = request.arrival_s
        candidates: list[tuple[_Partition, Outcome]] = []
        sub_statuses: list[str] = []
        for part in parts:
            replies = [
                self.nodes[ref.node_id].outcomes[ref.node_rid]
                for ref in part.refs
            ]
            ok = [o for o in replies if o.ok]
            if ok:
                winner = min(ok, key=lambda o: o.finish_s)
                # replica-fan-out losers executed for nothing
                self.stats.wasted_dispatches += len(ok) - 1
                candidates.append((part, winner))
            else:
                sub_statuses.extend(o.status for o in replies)
                self.stats.lost_partitions += 1

        # fast path: whole-routed request, single surviving reply
        if count == 1:
            if not candidates:
                return self._terminal_failure(request, parts, sub_statuses)
            _, o = candidates[0]
            finish = o.finish_s + NET_HOP_S
            return Outcome(
                rid=request.rid,
                status=o.status,
                finish_s=finish,
                arrival_s=arrival,
                latency_s=finish - arrival,
                batch_size=o.batch_size,
                algo=o.algo,
                cache_hit=o.cache_hit,
                values=o.values,
                indices=o.indices,
                recall_bound=o.recall_bound,
                exact=o.exact,
            )

        need = max(1, count - cfg.quorum_f)
        if len(candidates) < need:
            return self._terminal_failure(request, parts, sub_statuses)

        # hedging: a partition slower than the HedgePolicy threshold of
        # its siblings races a clean duplicate dispatched at the
        # threshold; the duplicate's cost estimate is the sibling
        # quantile itself (threshold / factor).  No-op on healthy runs.
        durations = [o.finish_s - arrival for _, o in candidates]
        effective = list(durations)
        if self.injector is not None:
            threshold = self.hedge.threshold(durations)
            for i, d in enumerate(durations):
                if d > threshold:
                    hedged = min(d, threshold + threshold / cfg.hedge_factor)
                    if hedged < d:
                        self.stats.hedges += 1
                        self.telemetry.on_hedge(arrival + threshold, 1)
                        effective[i] = hedged

        # quorum cut: everything that finished by the time the
        # (count - f)-th partition replied makes the merge; later
        # replies are dropped and charged against recall
        if cfg.quorum_f > 0 and len(candidates) > need:
            t_quorum = sorted(effective)[need - 1]
            merged = [
                (part, o, eff)
                for (part, o), eff in zip(candidates, effective)
                if eff <= t_quorum
            ]
            self.stats.dropped_partitions += len(candidates) - len(merged)
        else:
            merged = [
                (part, o, eff)
                for (part, o), eff in zip(candidates, effective)
            ]

        partials = [
            (o.values[None, :], o.indices[None, :] + part.start)
            for part, o, _ in merged
        ]
        values, indices, levels = hierarchical_merge(
            partials, request.k, largest=request.largest
        )
        n_candidates = sum(p[0].shape[1] for p in partials)
        merge_s = NET_HOP_S + levels * n_candidates * MERGE_PER_CANDIDATE_S
        finish = arrival + max(eff for _, _, eff in merged) + merge_s

        merged_parts = {part.index for part, _, _ in merged}
        n_lost = sum(p.size for p in parts if p.index not in merged_parts)
        sub_degraded = any(o.status == "degraded" for _, o, _ in merged)
        degraded = n_lost > 0 or sub_degraded
        exact = n_lost == 0 and all(o.exact for _, o, _ in merged)

        bound = None
        if n_lost > 0:
            _, bound = recall_bound(request.k, request.n, n_lost)
        sub_bounds = [
            o.recall_bound for _, o, _ in merged if o.recall_bound is not None
        ]
        if sub_bounds:
            # conservative composition: independent loss stages multiply
            combined = bound if bound is not None else 1.0
            for b in sub_bounds:
                combined *= b
            bound = combined

        return Outcome(
            rid=request.rid,
            status="degraded" if degraded else "served",
            finish_s=finish,
            arrival_s=arrival,
            latency_s=finish - arrival,
            batch_size=max(o.batch_size for _, o, _ in merged),
            algo=f"cluster:{merged[0][1].algo}",
            cache_hit=all(o.cache_hit for _, o, _ in merged),
            values=values[0],
            indices=indices[0],
            recall_bound=bound,
            exact=exact,
        )

    # -- cluster bookkeeping --------------------------------------------- #
    def _finish(self, request: Request, outcome: Outcome) -> Outcome:
        stats = self.stats
        setattr(stats, outcome.status, getattr(stats, outcome.status) + 1)
        stats.makespan_s = max(stats.makespan_s, outcome.finish_s)
        recall_target = request.min_recall is not None
        recall_met = True
        if recall_target and outcome.ok and outcome.recall_bound is not None:
            recall_met = outcome.recall_bound >= request.min_recall
        if recall_target and not recall_met:
            stats.recall_violations += 1
        if outcome.ok and not outcome.exact and outcome.status == "served":
            stats.approx_served += 1
        if outcome.ok and outcome.cache_hit:
            stats.cache_served += 1
        self.telemetry.on_outcome(
            outcome.status,
            outcome.finish_s,
            outcome.latency_s,
            exact=outcome.exact,
            recall_target=recall_target,
            recall_met=recall_met,
        )
        if outcome.latency_s is not None:
            cap = self.config.latency_sample_cap
            if cap is None or len(stats.latencies_s) < cap:
                stats.latencies_s.append(outcome.latency_s)
            else:
                stats.latency_truncated = True
        self.outcomes.append(outcome)
        return outcome

    def _aggregate_nodes(self) -> None:
        stats = self.stats
        for node in self.nodes:
            ns = node.stats
            stats.batches += ns.batches
            stats.busy_s += ns.busy_s
            stats.occupancies.extend(ns.occupancies)
            stats.retries += ns.retries
            stats.hedges += ns.hedges
            stats.breaker_trips += ns.breaker_trips
            stats.node_busy_s.append(ns.busy_s)
            stats.node_answered.append(ns.answered)
            stats.makespan_s = max(stats.makespan_s, ns.makespan_s)
            for kind, count in ns.faults.items():
                stats.faults[kind] = stats.faults.get(kind, 0) + count
            for key, value in ns.cache.items():
                stats.cache[key] = stats.cache.get(key, 0) + value
        if self.injector is not None:
            for kind, count in self.injector.fault_counts().items():
                stats.faults[kind] = stats.faults.get(kind, 0) + count

    # -- public API ------------------------------------------------------ #
    def run(self, requests: list[Request]) -> ClusterStats:
        """Serve a full virtual-time trace across the cluster.

        Every request gets exactly one terminal :class:`Outcome`
        (collected in :attr:`outcomes`, submission order), mirroring the
        single-node service contract.
        """
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        self._routes = [
            (request, self._route(request), self._partition_count(request))
            for request in ordered
        ]
        fanout(
            lambda node: node.run(), self.nodes, workers=self.config.workers
        )
        for request, parts, count in self._routes:
            self._finish(request, self._merge_request(request, parts, count))
        self._aggregate_nodes()
        return self.stats

    def node_reports(self) -> list[dict]:
        """Per-node ``repro.obs.serve_report/v1`` payloads (node order)."""
        from ..obs.serve import build_serve_report

        return [
            build_serve_report(
                node.telemetry,
                node.stats,
                config={"node": node.node_id, "role": "cluster-replica"},
            )
            for node in self.nodes
        ]

    def cluster_report(self, config: dict | None = None) -> dict:
        """The cluster-level ``repro.obs.serve_report/v1`` payload."""
        from ..obs.serve import build_serve_report

        echo = {"nodes": self.config.nodes, "placement": self.config.placement}
        echo.update(config or {})
        return build_serve_report(self.telemetry, self.stats, config=echo)
