"""Replica placement policies for the cluster router.

A placement policy answers one question: *which R of the N nodes hold a
replica of this partition?*  The answer is a preference-ordered tuple —
the router dispatches to the first reachable entry and fails over down
the list — and it must be **deterministic**: the same (payload key,
partition) always maps to the same replica set, so routing never depends
on thread interleaving and the cluster differential tests can pin
byte-identical results across worker counts.

Three policies, selectable by name through
:func:`make_placement` / :data:`PLACEMENTS`:

* ``consistent-hash`` — a sha256 hash ring with virtual nodes.  Keys
  spread uniformly, node membership changes move only ``1/N`` of the
  keyspace, and a repeated payload always lands on the same replicas
  (node-cache affinity).
* ``least-loaded`` — router-side greedy: the router tracks the work (in
  elements) it has assigned each node and sends the next partition to
  the currently lightest nodes, node id breaking ties.  Best balance
  under skewed payload sizes; no affinity.
* ``locality-aware`` — a payload-anchored block: partition ``p`` of a
  payload hashed to base ``h`` goes to nodes ``(h + p) ... (h + p + R-1)
  (mod N)``.  Consecutive partitions of one request land on consecutive
  nodes (one dispatch hop per node, merge-friendly fan-in) while
  distinct payloads anchor at distinct bases.
"""

from __future__ import annotations

import hashlib


#: policy names accepted by :func:`make_placement` and the CLI
PLACEMENTS = ("consistent-hash", "least-loaded", "locality-aware")


def _hash64(text: str) -> int:
    """Stable 64-bit hash (sha256 prefix) — never Python's salted hash()."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little")


class PlacementPolicy:
    """Deterministic key -> preference-ordered replica set mapping."""

    name = "abstract"

    def __init__(self, *, nodes: int, replication: int, seed: int = 0) -> None:
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if not 1 <= replication <= nodes:
            raise ValueError(
                f"replication must be in [1, nodes={nodes}], got {replication}"
            )
        self.nodes = nodes
        self.replication = replication
        self.seed = seed

    def replica_set(self, key: str, partition: int) -> tuple[int, ...]:
        """The ``replication`` distinct nodes holding ``(key, partition)``,
        most-preferred first."""
        raise NotImplementedError

    def record(self, node: int, cost: float) -> None:
        """Feedback hook: the router assigned ``cost`` units to ``node``.

        Only ``least-loaded`` uses it; the stateless policies ignore it.
        """


class ConsistentHashPlacement(PlacementPolicy):
    """Sha256 ring with virtual nodes; walk clockwise collecting replicas."""

    name = "consistent-hash"

    def __init__(
        self, *, nodes: int, replication: int, seed: int = 0, vnodes: int = 64
    ) -> None:
        super().__init__(nodes=nodes, replication=replication, seed=seed)
        ring = []
        for node in range(nodes):
            for v in range(vnodes):
                ring.append((_hash64(f"{seed}/node={node}/vnode={v}"), node))
        ring.sort()
        self._ring = ring

    def replica_set(self, key: str, partition: int) -> tuple[int, ...]:
        point = _hash64(f"{self.seed}/{key}/p={partition}")
        # binary search for the first ring entry at or past the point
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < point:
                lo = mid + 1
            else:
                hi = mid
        chosen: list[int] = []
        for i in range(len(self._ring)):
            node = self._ring[(lo + i) % len(self._ring)][1]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == self.replication:
                    break
        return tuple(chosen)


class LeastLoadedPlacement(PlacementPolicy):
    """Greedy on router-side assigned load; node id breaks ties."""

    name = "least-loaded"

    def __init__(self, *, nodes: int, replication: int, seed: int = 0) -> None:
        super().__init__(nodes=nodes, replication=replication, seed=seed)
        self.load = [0.0] * nodes

    def replica_set(self, key: str, partition: int) -> tuple[int, ...]:
        order = sorted(range(self.nodes), key=lambda i: (self.load[i], i))
        return tuple(order[: self.replication])

    def record(self, node: int, cost: float) -> None:
        self.load[node] += cost


class LocalityAwarePlacement(PlacementPolicy):
    """Payload-anchored block placement: partition ``p`` of payload base
    ``h`` lives on nodes ``(h + p + j) % N`` for ``j`` in ``0..R-1``."""

    name = "locality-aware"

    def replica_set(self, key: str, partition: int) -> tuple[int, ...]:
        base = _hash64(f"{self.seed}/{key}") % self.nodes
        return tuple(
            (base + partition + j) % self.nodes for j in range(self.replication)
        )


def make_placement(
    name: str, *, nodes: int, replication: int, seed: int = 0
) -> PlacementPolicy:
    """Build the named placement policy (see :data:`PLACEMENTS`)."""
    if name == "consistent-hash":
        return ConsistentHashPlacement(
            nodes=nodes, replication=replication, seed=seed
        )
    if name == "least-loaded":
        return LeastLoadedPlacement(nodes=nodes, replication=replication, seed=seed)
    if name == "locality-aware":
        return LocalityAwarePlacement(
            nodes=nodes, replication=replication, seed=seed
        )
    raise ValueError(f"placement must be one of {PLACEMENTS}, got {name!r}")
