"""Declarative, seeded fault plans.

A :class:`FaultPlan` is the complete description of a chaos experiment:
one seed plus a list of :class:`FaultRule` entries saying which fault
kind fires where, at what rate, and with what parameters.  Plans are
plain frozen dataclasses — picklable across a ``multiprocessing`` pool,
hashable, and round-trippable through the ``repro.faults.plan/v1`` JSON
schema that ``repro-topk serve-bench --faults`` loads.

Determinism is the whole point: a plan does not *roll dice* while the
system runs.  Every injection decision is a pure function of
``(plan seed, fault kind, site, decision key)`` — see
:mod:`repro.faults.injector` — so the same plan produces the same faults
whether the work runs inline, threaded, or across a process pool, and a
re-run reproduces a failure exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.schema import validate

#: every fault kind the injector understands (see docs/faults.md for the
#: site-by-site semantics)
FAULT_KINDS = (
    "shard_failure",
    "straggler",
    "worker_crash",
    "cache_corruption",
    "timeout",
    "node_crash",
    "node_partition",
)

#: the five kinds a single-node service injects (the node_* kinds are
#: router seams — see repro.cluster — and never fire inside a node)
SERVE_FAULT_KINDS = FAULT_KINDS[:5]

#: kinds the cluster router consults at the ``cluster.node`` site:
#: ``node_crash`` makes a replica unreachable (sticky = the node has
#: left the cluster; transient = it crashes for one fault epoch and
#: rejoins), ``node_partition`` lets the node execute the work but
#: drops its reply on the way back to the router
NODE_FAULT_KINDS = FAULT_KINDS[5:]

#: sites at which the seams consult the injector
FAULT_SITES = (
    "serve.shard",
    "serve.batch",
    "serve.cache",
    "exec.point",
    "cluster.node",
)

FAULT_PLAN_SCHEMA = {
    "type": "object",
    "required": ["schema", "seed", "rules"],
    "properties": {
        "schema": {"const": "repro.faults.plan/v1"},
        "seed": {"type": "integer"},
        "rules": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["kind", "rate"],
                "properties": {
                    "kind": {"enum": list(FAULT_KINDS)},
                    "rate": {"type": "number"},
                    "site": {"type": "string"},
                    "factor": {"type": "number"},
                    "sticky": {"type": "boolean"},
                },
            },
        },
    },
}


@dataclass(frozen=True)
class FaultRule:
    """One kind of fault, injected at one (family of) site(s)."""

    #: what goes wrong — one of :data:`FAULT_KINDS`
    kind: str
    #: probability an eligible decision point fires, in [0, 1]
    rate: float
    #: site filter: ``"*"`` matches everywhere the kind applies, otherwise
    #: a prefix of the seam's site name (e.g. ``"serve.shard"``)
    site: str = "*"
    #: slowdown multiplier for ``straggler``/``timeout`` faults (>= 1)
    factor: float = 4.0
    #: when True the fault is *persistent*: once it fires for a decision
    #: key, every retry of the same operation fails too (retries draw
    #: fresh outcomes otherwise — the transient-fault model)
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def matches(self, site: str) -> bool:
        return self.site == "*" or site.startswith(self.site)

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "site": self.site,
            "factor": self.factor,
            "sticky": self.sticky,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultRule":
        return cls(
            kind=payload["kind"],
            rate=payload["rate"],
            site=payload.get("site", "*"),
            factor=payload.get("factor", 4.0),
            sticky=payload.get("sticky", False),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules; empty by default (inject nothing)."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # normalise lists passed by callers into the hashable tuple form
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    @property
    def empty(self) -> bool:
        """True when no rule can ever fire (rate-0 rules count as inert)."""
        return all(rule.rate <= 0.0 for rule in self.rules)

    def rules_for(self, kind: str, site: str) -> tuple[FaultRule, ...]:
        return tuple(
            r for r in self.rules if r.kind == kind and r.matches(site)
        )

    def injector(self):
        """A fresh :class:`~repro.faults.injector.FaultInjector` over this plan."""
        from .injector import FaultInjector

        return FaultInjector(self)

    # -- JSON round trip ------------------------------------------------- #
    def to_payload(self) -> dict:
        return {
            "schema": "repro.faults.plan/v1",
            "seed": self.seed,
            "rules": [rule.to_payload() for rule in self.rules],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        validate(payload, FAULT_PLAN_SCHEMA)
        rules = tuple(FaultRule.from_payload(r) for r in payload["rules"])
        return cls(seed=payload["seed"], rules=rules)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_payload(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_payload(json.loads(Path(path).read_text()))


def validate_fault_plan(payload: object) -> None:
    """Raise :class:`repro.obs.SchemaError` unless ``payload`` is a valid
    ``repro.faults.plan/v1`` document (rule fields are range-checked by
    :class:`FaultRule` on construction)."""
    validate(payload, FAULT_PLAN_SCHEMA)
    for rule in payload["rules"]:  # type: ignore[index]
        FaultRule.from_payload(rule)
