"""Deterministic fault injection decisions.

The injector answers one question — *does this fault fire here, now?* —
as a pure function of ``(plan seed, kind, site, decision key)``.  The
uniform draw behind each decision comes from a sha256 hash rather than a
stateful RNG, so the answer does not depend on how many other decisions
were made before it, which thread asked, or how a sweep was chunked
across a process pool.  That property is what lets the chaos tests pin
``workers=1 == workers=N`` under the same fault seed.

Sticky semantics: a rule with ``sticky=True`` ignores the ``attempt``
component of the key, so every retry of the same operation sees the same
verdict (a hard fault); non-sticky rules draw fresh per attempt (a
transient fault a retry can clear).
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass

from .plan import FaultPlan, FaultRule

#: key component the sticky logic strips — callers pass ``attempt=i``
_ATTEMPT_PREFIX = "attempt="


def fault_draw(seed: int, kind: str, site: str, *key: object) -> float:
    """The uniform [0, 1) draw behind one injection decision.

    Pure and stateless: sha256 over the seed, kind, site and key parts.
    """
    text = ":".join([str(seed), kind, site, *[str(part) for part in key]])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little") / float(1 << 64)


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault: what, where, and under which rule."""

    kind: str
    site: str
    key: tuple
    rule: FaultRule
    draw: float

    @property
    def factor(self) -> float:
        return self.rule.factor


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the seams that consult it.

    ``decide()`` is deterministic and order-independent; the only mutable
    state is the event log and per-kind tally kept for reporting (list
    append / Counter update, safe under the GIL for the thread fan-out
    the sharder uses).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.events: list[FaultEvent] = []
        self.counts: Counter = Counter()

    def decide(self, kind: str, site: str, *key: object) -> FaultEvent | None:
        """The fault firing at ``(kind, site, key)``, or None.

        The first matching rule whose draw lands under its rate wins.
        ``attempt=<i>`` key parts are dropped for sticky rules so retries
        of a hard fault keep failing.
        """
        for rule in self.plan.rules:
            if rule.kind != kind or not rule.matches(site) or rule.rate <= 0.0:
                continue
            parts = key
            if rule.sticky:
                parts = tuple(
                    p
                    for p in key
                    if not (isinstance(p, str) and p.startswith(_ATTEMPT_PREFIX))
                )
            draw = fault_draw(self.plan.seed, kind, site, *parts)
            if draw < rule.rate:
                event = FaultEvent(
                    kind=kind, site=site, key=tuple(key), rule=rule, draw=draw
                )
                self.events.append(event)
                self.counts[kind] += 1
                return event
        return None

    def fault_counts(self) -> dict[str, int]:
        """Fired faults by kind (reported in ServeStats and manifests)."""
        return dict(sorted(self.counts.items()))
