"""The recovery policies the injected faults exercise.

Four small, independently testable pieces:

* :func:`backoff_schedule` / :class:`RetryPolicy` — capped exponential
  backoff for per-shard and per-batch retries;
* :class:`HedgePolicy` — hedged duplicate dispatch for stragglers past a
  latency quantile of their sibling shards;
* :class:`CircuitBreaker` — trip the result cache after repeated
  corruption, bypass it for a cooldown, then probe half-open;
* :func:`recall_bound` — the degraded-result contract: the recall
  guarantee a lossy shard merge reports alongside its answer.

All time arithmetic is in the repository's simulated-seconds domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def backoff_schedule(
    attempts: int, *, base_s: float, cap_s: float
) -> list[float]:
    """Capped exponential backoff delays before retries 1..attempts-1.

    >>> backoff_schedule(4, base_s=1.0, cap_s=5.0)
    [1.0, 2.0, 4.0]
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if base_s < 0 or cap_s < 0:
        raise ValueError("backoff base and cap must be >= 0")
    return [min(cap_s, base_s * (2.0**i)) for i in range(attempts - 1)]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-attempt a failed operation, and how long to
    wait (in virtual time) before each retry."""

    retries: int = 2
    backoff_base_s: float = 1e-4
    backoff_cap_s: float = 1e-2

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

    @property
    def attempts(self) -> int:
        return 1 + self.retries

    def backoff(self, attempt: int) -> float:
        """Delay before re-running after failed attempt ``attempt`` (0-based)."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0**attempt))


@dataclass(frozen=True)
class HedgePolicy:
    """Duplicate-dispatch policy for stragglers.

    A shard whose completion time exceeds ``factor`` times the
    ``quantile`` of its sibling shards' times gets a hedge: a duplicate
    dispatched at that threshold, racing the original.  The shard's
    effective time is ``min(original, threshold + duplicate)``.  Hedging
    never changes results — the duplicate computes the same pure
    function — and is a provable no-op when nothing is inflated:
    ``min(t, threshold + t) == t``.
    """

    quantile: float = 0.5
    factor: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {self.quantile}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def threshold(self, times_s: list[float]) -> float:
        """Dispatch a hedge for anything slower than this, seconds."""
        if not times_s:
            return math.inf
        ordered = sorted(times_s)
        pos = self.quantile * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        q = ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)
        return q * self.factor


class CircuitBreaker:
    """Trip after ``threshold`` consecutive failures; bypass for
    ``cooldown_s`` of virtual time; then allow one half-open probe.

    A success in closed or half-open state resets the failure count and
    closes the breaker.  ``allow(now_s)`` says whether the protected
    resource may be used at virtual time ``now_s``.
    """

    def __init__(self, *, threshold: int = 3, cooldown_s: float = 0.25) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.failures = 0
        self.opened_at_s: float | None = None
        #: lifetime trip count, for metrics
        self.trips = 0

    @property
    def state(self) -> str:
        return "open" if self.opened_at_s is not None else "closed"

    def allow(self, now_s: float) -> bool:
        if self.opened_at_s is None:
            return True
        if now_s - self.opened_at_s >= self.cooldown_s:
            return True  # half-open: let one probe through
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at_s = None

    def record_failure(self, now_s: float) -> bool:
        """Count one failure; returns True when this failure trips the
        breaker open (or re-opens it from half-open)."""
        self.failures += 1
        if self.opened_at_s is not None:
            # failed half-open probe: restart the cooldown
            self.opened_at_s = now_s
            return True
        if self.failures >= self.threshold:
            self.opened_at_s = now_s
            self.trips += 1
            return True
        return False


def recall_bound(
    k: int, n_total: int, n_lost: int, *, delta: float = 1e-6
) -> tuple[float, float]:
    """The degraded-result contract: ``(coverage, bound)``.

    When a shard merge loses ``n_lost`` of ``n_total`` candidate
    elements, each of the true top-k elements survives with probability
    ``coverage = 1 - n_lost / n_total`` under the exchangeability
    assumption (element values independent of their shard placement — the
    bounded-error regime of Key et al.'s approximate top-k).  Recall over
    the k slots then concentrates around ``coverage``; Hoeffding gives
    the reported high-probability floor::

        recall >= coverage - sqrt(ln(1/delta) / (2 k))   w.p. >= 1 - delta

    clamped to [0, coverage].  Adversarially placed data can break any
    nonzero deterministic bound (all of the top-k may sit in the lost
    shard), which is why the contract is probabilistic and why degraded
    results are flagged rather than silently returned.
    """
    if not 1 <= k:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0 <= n_lost <= n_total:
        raise ValueError(f"n_lost must be in [0, n_total], got {n_lost}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    coverage = 1.0 - (n_lost / n_total if n_total else 0.0)
    slack = math.sqrt(math.log(1.0 / delta) / (2.0 * k))
    return coverage, max(0.0, coverage - slack)
