"""Deterministic fault injection and the recovery policies it exercises.

The serving/execution stack assumes every shard, worker and cache access
succeeds; this package is how that assumption is tested and removed (see
docs/faults.md).  Three coordinated pieces:

* :mod:`.plan` — :class:`FaultPlan` / :class:`FaultRule`: a seeded,
  JSON-round-trippable description of *what* fails *where* at *what
  rate* (``repro.faults.plan/v1`` schema, loaded by
  ``repro-topk serve-bench --faults``);
* :mod:`.injector` — :class:`FaultInjector`: evaluates a plan with pure
  hash-based draws, so decisions are identical across threads, process
  pools and re-runs;
* :mod:`.policies` — the recovery side: capped-exponential
  :class:`RetryPolicy`, straggler :class:`HedgePolicy`,
  :class:`CircuitBreaker` for the result cache, and the
  :func:`recall_bound` contract degraded shard merges report.

The seams that consult the injector live in :mod:`repro.serve.sharder`,
:mod:`repro.serve.service`, :mod:`repro.serve.cache`,
:mod:`repro.exec.worker` and — for the ``node_crash``/``node_partition``
kinds — the :mod:`repro.cluster` router; with no plan installed every
seam is a strict no-op and behaviour is byte-identical to the fault-free
stack (pinned by tests/test_faults.py and tests/test_cluster_chaos.py).
"""

from .injector import FaultEvent, FaultInjector, fault_draw
from .plan import (
    FAULT_KINDS,
    FAULT_PLAN_SCHEMA,
    FAULT_SITES,
    NODE_FAULT_KINDS,
    SERVE_FAULT_KINDS,
    FaultPlan,
    FaultRule,
    validate_fault_plan,
)
from .policies import (
    CircuitBreaker,
    HedgePolicy,
    RetryPolicy,
    backoff_schedule,
    recall_bound,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_SCHEMA",
    "FAULT_SITES",
    "NODE_FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "HedgePolicy",
    "RetryPolicy",
    "backoff_schedule",
    "fault_draw",
    "recall_bound",
    "validate_fault_plan",
]
