"""Command-line interface: run selections, comparisons and sweeps.

Examples::

    python -m repro topk --n 2^20 --k 100 --algo air_topk
    python -m repro compare --n 2^22 --k 256 --distribution adversarial
    python -m repro sweep --vary n --k 256 --points 2^12:2^26 --workers 4
    python -m repro auto --n 2^24 --k 1024
    python -m repro table2
"""

from __future__ import annotations

import argparse
import sys

from . import available_algorithms
from .bench import (
    ALL_ALGORITHMS,
    format_dispatch_table,
    format_table,
    format_time,
    plot_sweep,
    run_paper_suite,
    sweep,
    table2,
    write_csv,
)
from .datagen import DISTRIBUTIONS
from .device import PRESETS, get_spec
from .perf import DEFAULT_EXACT_CAP, render_roofline, simulate_topk, sol_report


def _size(text: str) -> int:
    """Parse '1048576' or '2^20'."""
    if "^" in text:
        base, exp = text.split("^", 1)
        return int(base) ** int(exp)
    return int(text)


def _size_range(text: str) -> list[int]:
    """Parse '2^12:2^26' into the powers of two between the endpoints,
    or a comma-separated explicit list."""
    if ":" in text:
        lo, hi = (_size(part) for part in text.split(":", 1))
        if lo <= 0 or hi < lo:
            raise argparse.ArgumentTypeError(f"bad range {text!r}")
        points = []
        p = 1 << (lo - 1).bit_length()
        p = max(p, 1)
        while p <= hi:
            if p >= lo:
                points.append(p)
            p <<= 1
        return points or [lo]
    return [_size(part) for part in text.split(",")]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel top-k algorithms on a simulated GPU "
            "(reproduction of Zhang et al., SC '23)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_exec(p):
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="processes to shard the sweep grid across (1 = run inline)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="per-point wall-clock budget in seconds (over-budget points "
            "become 'timeout' rows)",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="print live progress with ETA to stderr",
        )

    def add_common(p):
        p.add_argument("--n", type=_size, default=1 << 20, help="list length")
        p.add_argument("--k", type=_size, default=256, help="results per problem")
        p.add_argument("--batch", type=int, default=1, help="problems per run")
        p.add_argument(
            "--distribution",
            choices=DISTRIBUTIONS,
            default="uniform",
        )
        p.add_argument(
            "--gpu", choices=sorted(PRESETS), default="A100", help="simulated board"
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--cap",
            type=_size,
            default=DEFAULT_EXACT_CAP,
            help="max elements materialised; larger runs use scaled execution",
        )

    p_topk = sub.add_parser("topk", help="run one algorithm on one problem")
    add_common(p_topk)
    p_topk.add_argument("--algo", choices=available_algorithms(), default="air_topk")
    p_topk.add_argument("--largest", action="store_true")
    p_topk.add_argument(
        "--sol", action="store_true", help="print the per-kernel SOL table"
    )
    p_topk.add_argument(
        "--timeline", action="store_true", help="print the execution timeline"
    )
    p_topk.add_argument(
        "--roofline", action="store_true", help="print the roofline analysis"
    )

    p_cmp = sub.add_parser("compare", help="rank every algorithm on one problem")
    add_common(p_cmp)

    p_sweep = sub.add_parser("sweep", help="sweep N or K and plot the series")
    add_common(p_sweep)
    add_exec(p_sweep)
    p_sweep.add_argument("--vary", choices=("n", "k"), default="n")
    p_sweep.add_argument(
        "--points",
        type=_size_range,
        default=None,
        help="swept values, '2^12:2^26' or comma list",
    )
    p_sweep.add_argument(
        "--csv", default=None, help="also write every point to this CSV file"
    )
    p_sweep.add_argument(
        "--with-auto",
        action="store_true",
        help="include the 'auto' dispatcher in the sweep and print where it "
        "sent each point",
    )

    p_auto = sub.add_parser(
        "auto",
        help="cost-model dispatch: predict the fastest algorithm and run it",
    )
    add_common(p_auto)
    p_auto.add_argument(
        "--calibration",
        default=None,
        help="JSON measurement cache (repro.perf.CalibrationCache) used to "
        "refine the analytic predictions",
    )

    p_t2 = sub.add_parser("table2", help="reproduce the paper's Table 2 (reduced grid)")
    p_t2.add_argument("--cap", type=_size, default=DEFAULT_EXACT_CAP)
    p_t2.add_argument("--seed", type=int, default=0)
    add_exec(p_t2)

    p_rep = sub.add_parser(
        "reproduce", help="run the paper's full Section-5 evaluation"
    )
    p_rep.add_argument("--cap", type=_size, default=DEFAULT_EXACT_CAP)
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--full", action="store_true", help="paper-size grids")
    p_rep.add_argument("--out", default=None, help="directory for CSV/txt output")
    add_exec(p_rep)

    return parser


def _progress_printer(enabled: bool):
    """Build a ProgressEvent callback rendering a live status line, or None."""
    if not enabled:
        return None

    def show(ev) -> None:
        eta = "?" if ev.eta_s is None else f"{ev.eta_s:.0f}s"
        line = (
            f"\r[{ev.done}/{ev.total}] {ev.fraction * 100:5.1f}%  "
            f"elapsed {ev.elapsed_s:.0f}s  eta {eta}  "
            f"last: {ev.point.algo} n={ev.point.n} k={ev.point.k} "
            f"({ev.point.status})"
        )
        end = "\n" if ev.done == ev.total else ""
        print(f"{line:<78}", end=end, file=sys.stderr, flush=True)

    return show


def _point_progress(enabled: bool, total: int | None = None):
    """Per-point progress callback for code paths taking BenchPoint."""
    if not enabled:
        return None
    state = {"done": 0}

    def show(point) -> None:
        state["done"] += 1
        suffix = f"/{total}" if total else ""
        print(
            f"\r[{state['done']}{suffix}] {point.algo} n={point.n} "
            f"k={point.k} ({point.status})".ljust(70),
            end="",
            file=sys.stderr,
            flush=True,
        )

    return show


def cmd_topk(args) -> int:
    run = simulate_topk(
        args.algo,
        distribution=args.distribution,
        n=args.n,
        k=args.k,
        batch=args.batch,
        spec=get_spec(args.gpu),
        cap=args.cap,
        seed=args.seed,
        largest=args.largest,
    )
    direction = "largest" if args.largest else "smallest"
    print(
        f"{args.algo}: {direction} {args.k} of {args.n:,} "
        f"({args.distribution}, batch {args.batch}) on {args.gpu}"
    )
    print(f"simulated time: {format_time(run.time)}  [{run.mode} mode]")
    c = run.device.counters
    print(
        f"kernels: {c.kernel_launches}, device traffic: "
        f"{c.bytes_total / 1e6:.2f} MB, PCIe transfers: {c.pcie_transfers}, "
        f"syncs: {c.syncs}"
    )
    if run.result is not None:
        vals = run.result.values if run.result.values.ndim == 1 else run.result.values[0]
        print(f"first results: {vals[: min(5, len(vals))]}")
    if args.sol:
        print("\nper-kernel Speed of Light:")
        print(
            format_table(
                ["kernel", "time %", "memory SOL", "compute SOL"],
                [r.row() for r in sol_report(run.device)],
            )
        )
    if args.timeline:
        print("\ntimeline:")
        print(run.device.timeline.render())
    if args.roofline:
        print("\nroofline:")
        print(render_roofline(run.device))
    return 0


def cmd_compare(args) -> int:
    rows = []
    for algo in available_algorithms():
        try:
            run = simulate_topk(
                algo,
                distribution=args.distribution,
                n=args.n,
                k=args.k,
                batch=args.batch,
                spec=get_spec(args.gpu),
                cap=args.cap,
                seed=args.seed,
            )
        except Exception as exc:  # UnsupportedProblem etc.
            rows.append((float("inf"), algo, "-", str(exc)[:40]))
            continue
        note = run.mode if run.dispatch is None else f"{run.mode} -> {run.dispatch}"
        rows.append((run.time, algo, format_time(run.time), note))
    rows.sort()
    print(
        f"n={args.n:,} k={args.k} batch={args.batch} "
        f"{args.distribution} on {args.gpu}:"
    )
    print(
        format_table(
            ["rank", "algorithm", "time", "mode/notes"],
            [(i + 1, a, t, m) for i, (_, a, t, m) in enumerate(rows)],
        )
    )
    return 0


def cmd_sweep(args) -> int:
    from .exec import parallel_sweep

    points = args.points
    if points is None:
        points = (
            [1 << p for p in range(12, 27, 2)]
            if args.vary == "n"
            else [1 << p for p in range(3, 12)]
        )
    ns = points if args.vary == "n" else (args.n,)
    ks = points if args.vary == "k" else (args.k,)
    algos = ALL_ALGORITHMS + ("auto",) if args.with_auto else ALL_ALGORITHMS
    result = parallel_sweep(
        algos=algos,
        distributions=(args.distribution,),
        ns=ns,
        ks=ks,
        batches=(args.batch,),
        spec=get_spec(args.gpu),
        cap=args.cap,
        seed=args.seed,
        workers=args.workers,
        timeout=args.timeout,
        progress=_progress_printer(args.progress),
    )
    if args.csv:
        # write before plotting so status rows survive even when nothing
        # measured (e.g. every point timed out)
        path = write_csv(result.points, args.csv)
        print(f"wrote {len(result.points)} points to {path}")
    if any(p.time is not None for p in result.points):
        fixed = {"k": args.k} if args.vary == "n" else {"n": args.n}
        print(
            plot_sweep(
                result,
                algos=algos,
                distribution=args.distribution,
                batch=args.batch,
                vary=args.vary,
                fixed=fixed,
            )
        )
    else:
        from collections import Counter

        counts = Counter(p.status for p in result.points)
        summary = ", ".join(f"{v} {s}" for s, v in sorted(counts.items()))
        print(f"no measured points to plot ({summary})")
    if args.with_auto:
        print("\nauto dispatch choices:")
        print(format_dispatch_table(result.points))
    return 0


def cmd_auto(args) -> int:
    from .perf.calibration import CalibrationCache
    from .perf.costmodel import rank_algorithms

    calibration = None
    if args.calibration:
        calibration = CalibrationCache.load(args.calibration)
    spec = get_spec(args.gpu)
    ranking = rank_algorithms(
        n=args.n, k=args.k, batch=args.batch, spec=spec, calibration=calibration
    )
    print(
        f"cost-model ranking for n={args.n:,} k={args.k} batch={args.batch} "
        f"on {args.gpu}:"
    )
    print(
        format_table(
            ["rank", "algorithm", "predicted", "source"],
            [
                (i + 1, p.algo, format_time(p.time), p.source)
                for i, p in enumerate(ranking)
            ],
        )
    )
    run = simulate_topk(
        "auto",
        distribution=args.distribution,
        n=args.n,
        k=args.k,
        batch=args.batch,
        spec=spec,
        cap=args.cap,
        seed=args.seed,
        calibration=calibration,
    )
    print(
        f"\ndispatched to: {run.dispatch}\n"
        f"simulated time: {format_time(run.time)}  [{run.mode} mode]"
    )
    return 0


def cmd_table2(args) -> int:
    ns = [1 << p for p in (11, 15, 20, 25, 30)]
    progress = _point_progress(args.progress)
    result = sweep(
        distributions=("uniform", "normal", "adversarial"),
        ns=ns,
        ks=(32, 256, 32768),
        batches=(1,),
        cap=args.cap,
        seed=args.seed,
        workers=args.workers,
        timeout=args.timeout,
        progress=progress,
    )
    batch100 = sweep(
        distributions=("uniform", "normal", "adversarial"),
        ns=[n for n in ns if n <= 1 << 24],
        ks=(32, 256, 32768),
        batches=(100,),
        cap=args.cap,
        seed=args.seed,
        workers=args.workers,
        timeout=args.timeout,
        progress=progress,
    )
    if progress is not None:
        print(file=sys.stderr)
    for p in batch100.points:
        result.add(p)
    rows = table2(result)
    print(
        format_table(
            ["batch", "distribution", "AIR vs Radix", "Grid vs Block", "AIR vs SOTA"],
            [
                (
                    r.batch,
                    r.distribution,
                    r.air_vs_radix.formatted(),
                    r.grid_vs_block.formatted(),
                    r.air_vs_sota.formatted(),
                )
                for r in rows
            ],
        )
    )
    return 0


def cmd_reproduce(args) -> int:
    progress = _point_progress(args.progress)
    suite = run_paper_suite(
        out_dir=args.out,
        cap=args.cap,
        full=args.full,
        seed=args.seed,
        workers=args.workers,
        timeout=args.timeout,
        progress=progress,
    )
    if progress is not None:
        print(file=sys.stderr)
    print(suite.render())
    return 0


COMMANDS = {
    "topk": cmd_topk,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "auto": cmd_auto,
    "table2": cmd_table2,
    "reproduce": cmd_reproduce,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
