"""Command-line interface: run selections, comparisons and sweeps.

Examples::

    python -m repro topk --n 2^20 --k 100 --algo air_topk
    python -m repro compare --n 2^22 --k 256 --distribution adversarial
    python -m repro sweep --vary n --k 256 --points 2^12:2^26 --workers 4
    python -m repro sweep --workers 4 --trace out.json --metrics metrics.json
    python -m repro auto --n 2^24 --k 1024
    python -m repro recall-bench --out recall_bench.json
    python -m repro cluster-bench --faults benchmarks/fault_plans/cluster.json
    python -m repro drift results.csv
    python -m repro inspect out/manifest.json
    python -m repro table2

Results (tables, plots, rankings) go to stdout; status and progress go to
the ``repro`` logger on stderr (``-v`` for per-point detail, ``-q`` for
errors only).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from contextlib import ExitStack, contextmanager
from pathlib import Path

from . import algorithm_names, obs
from .cluster import PLACEMENTS as CLUSTER_PLACEMENTS
from .bench import (
    ALL_ALGORITHMS,
    BenchPoint,
    format_dispatch_table,
    format_table,
    format_time,
    plot_sweep,
    read_csv,
    run_paper_suite,
    sweep,
    table2,
    write_csv,
)
from .datagen import DISTRIBUTIONS
from .device import PRESETS, get_spec, timeline_spans
from .perf import DEFAULT_EXACT_CAP, render_roofline, simulate_topk, sol_report

logger = logging.getLogger("repro")


def _size(text: str) -> int:
    """Parse '1048576' or '2^20'."""
    if "^" in text:
        base, exp = text.split("^", 1)
        return int(base) ** int(exp)
    return int(text)


def _size_range(text: str) -> list[int]:
    """Parse '2^12:2^26' into the powers of two between the endpoints,
    or a comma-separated explicit list."""
    if ":" in text:
        lo, hi = (_size(part) for part in text.split(":", 1))
        if lo <= 0 or hi < lo:
            raise argparse.ArgumentTypeError(f"bad range {text!r}")
        points = []
        p = 1 << (lo - 1).bit_length()
        p = max(p, 1)
        while p <= hi:
            if p >= lo:
                points.append(p)
            p <<= 1
        return points or [lo]
    return [_size(part) for part in text.split(",")]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel top-k algorithms on a simulated GPU "
            "(reproduction of Zhang et al., SC '23)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_logging(p):
        p.add_argument(
            "-v",
            "--verbose",
            action="count",
            default=0,
            help="log per-point progress and debug detail to stderr",
        )
        p.add_argument(
            "-q",
            "--quiet",
            action="store_true",
            help="suppress status logging (errors only)",
        )

    def add_telemetry(p):
        p.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="write a merged chrome-trace JSON (host spans + simulated "
            "device streams; open in Perfetto or chrome://tracing)",
        )
        p.add_argument(
            "--metrics",
            metavar="PATH",
            default=None,
            help="write the run's metrics registry as JSON",
        )

    def add_exec(p):
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="processes to shard the sweep grid across (1 = run inline)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="per-point wall-clock budget in seconds (over-budget points "
            "become 'timeout' rows)",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="print live progress with ETA to stderr",
        )

    def add_common(p):
        p.add_argument("--n", type=_size, default=1 << 20, help="list length")
        p.add_argument("--k", type=_size, default=256, help="results per problem")
        p.add_argument("--batch", type=int, default=1, help="problems per run")
        p.add_argument(
            "--distribution",
            choices=DISTRIBUTIONS,
            default="uniform",
        )
        p.add_argument(
            "--gpu", choices=sorted(PRESETS), default="A100", help="simulated board"
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--cap",
            type=_size,
            default=DEFAULT_EXACT_CAP,
            help="max elements materialised; larger runs use scaled execution",
        )

    p_topk = sub.add_parser("topk", help="run one algorithm on one problem")
    add_common(p_topk)
    add_logging(p_topk)
    add_telemetry(p_topk)
    p_topk.add_argument("--algo", choices=algorithm_names(), default="air_topk")
    p_topk.add_argument("--largest", action="store_true")
    p_topk.add_argument(
        "--sol", action="store_true", help="print the per-kernel SOL table"
    )
    p_topk.add_argument(
        "--timeline", action="store_true", help="print the execution timeline"
    )
    p_topk.add_argument(
        "--roofline", action="store_true", help="print the roofline analysis"
    )

    p_cmp = sub.add_parser("compare", help="rank every algorithm on one problem")
    add_common(p_cmp)
    add_logging(p_cmp)

    p_sweep = sub.add_parser("sweep", help="sweep N or K and plot the series")
    add_common(p_sweep)
    add_exec(p_sweep)
    add_logging(p_sweep)
    add_telemetry(p_sweep)
    p_sweep.add_argument("--vary", choices=("n", "k"), default="n")
    p_sweep.add_argument(
        "--points",
        type=_size_range,
        default=None,
        help="swept values, '2^12:2^26' or comma list",
    )
    p_sweep.add_argument(
        "--csv", default=None, help="also write every point to this CSV file"
    )
    p_sweep.add_argument(
        "--with-auto",
        action="store_true",
        help="include the 'auto' dispatcher in the sweep and print where it "
        "sent each point",
    )

    p_auto = sub.add_parser(
        "auto",
        help="cost-model dispatch: predict the fastest algorithm and run it",
    )
    add_common(p_auto)
    add_logging(p_auto)
    p_auto.add_argument(
        "--calibration",
        default=None,
        help="JSON measurement cache (repro.perf.CalibrationCache) used to "
        "refine the analytic predictions",
    )

    p_t2 = sub.add_parser("table2", help="reproduce the paper's Table 2 (reduced grid)")
    p_t2.add_argument("--cap", type=_size, default=DEFAULT_EXACT_CAP)
    p_t2.add_argument("--seed", type=int, default=0)
    add_exec(p_t2)
    add_logging(p_t2)

    p_rep = sub.add_parser(
        "reproduce", help="run the paper's full Section-5 evaluation"
    )
    p_rep.add_argument("--cap", type=_size, default=DEFAULT_EXACT_CAP)
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--full", action="store_true", help="paper-size grids")
    p_rep.add_argument("--out", default=None, help="directory for CSV/txt output")
    add_exec(p_rep)
    add_logging(p_rep)
    add_telemetry(p_rep)

    p_serve = sub.add_parser(
        "serve-bench",
        help="closed-loop load test of the top-k serving layer "
        "(micro-batching, sharding, caching, backpressure)",
    )
    p_serve.add_argument("--qps", type=float, default=200.0, help="offered load")
    p_serve.add_argument(
        "--duration", type=float, default=2.0, help="virtual seconds of traffic"
    )
    p_serve.add_argument("--n", type=_size, default=1 << 16, help="list length")
    p_serve.add_argument("--k", type=_size, default=64, help="results per query")
    p_serve.add_argument("--largest", action="store_true")
    p_serve.add_argument("--distribution", choices=DISTRIBUTIONS, default="uniform")
    p_serve.add_argument(
        "--arrival",
        choices=("poisson", "uniform"),
        default="poisson",
        help="arrival process of the virtual-time trace",
    )
    p_serve.add_argument(
        "--pool",
        type=int,
        default=4096,
        help="distinct payloads in the trace (small pool = hot queries, "
        "exercises the result cache)",
    )
    p_serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request latency SLO; late requests time out",
    )
    p_serve.add_argument(
        "--algo",
        choices=algorithm_names(),
        default="auto",
        help="selection algorithm ('auto' consults the cached cost model)",
    )
    p_serve.add_argument(
        "--gpu", choices=sorted(PRESETS), default="A100", help="simulated board"
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64, help="size trigger of the batcher"
    )
    p_serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=50.0,
        help="delay trigger: flush a group once its oldest request waited this",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=512,
        help="admission bound; arrivals beyond it are shed",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split each batch across this many simulated devices (>= 2 "
        "enables sharded selection + hierarchical merge)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--min-recall",
        type=float,
        default=None,
        metavar="R",
        help="recall target in (0, 1] attached to requests; targeted "
        "traffic may be served by the approximate tier when the "
        "quality-aware planner predicts the target is met "
        "(see docs/approximate.md)",
    )
    p_serve.add_argument(
        "--approx-fraction",
        type=float,
        default=1.0,
        metavar="F",
        help="fraction of requests carrying the --min-recall target "
        "(the rest stay exact); only meaningful with --min-recall",
    )
    p_serve.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="JSON fault plan (repro.faults.plan/v1) to inject: shard "
        "failures, stragglers, worker crashes, cache corruption, timeouts "
        "— the run reports availability and degraded/failed tallies "
        "(see docs/faults.md; benchmarks/fault_plans/ has a reference plan)",
    )
    p_serve.add_argument(
        "--out",
        default=None,
        help="directory for the run manifest (one BenchPoint per micro-batch) "
        "and the serve report",
    )
    p_serve.add_argument(
        "--slo",
        default=None,
        metavar="SPEC.json",
        help="evaluate SLOs from a repro.obs.slo/v1 spec file ('default' "
        "uses the built-in availability + latency targets); prints the "
        "verdicts and exits 1 on any violation "
        "(benchmarks/slo/default.json is a reference spec)",
    )
    p_serve.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the windowed repro.obs.serve_report/v1 JSON here "
        "(view it with 'repro-topk serve-report')",
    )
    p_serve.add_argument(
        "--window-ms",
        type=float,
        default=250.0,
        help="telemetry window width for the serve report's time series",
    )
    p_serve.add_argument(
        "--serve-workers",
        type=int,
        default=1,
        help="host threads for sharded execution's numpy fan-out (never "
        "changes outcomes or the serve report)",
    )
    p_serve.add_argument(
        "--adaptive",
        action="store_true",
        help="enable online adaptive dispatch: fold each batch's measured "
        "time back into per-regime cost-model corrections and explore "
        "alternative algorithms epsilon-greedily (needs --algo auto and "
        "--metrics/--trace telemetry; see docs/adaptive.md)",
    )
    p_serve.add_argument(
        "--corrections",
        default=None,
        metavar="PATH",
        help="with --adaptive: persist the learned correction store "
        "(repro.perf.corrections/v1) here after the run; if the file "
        "exists it seeds the store, so successive runs keep learning",
    )
    add_logging(p_serve)
    add_telemetry(p_serve)

    p_srep = sub.add_parser(
        "serve-report",
        help="render a serve_report JSON (written by serve-bench --report) "
        "as the windowed ascii dashboard with SLO verdicts",
    )
    p_srep.add_argument("path", help="repro.obs.serve_report/v1 JSON file")
    p_srep.add_argument(
        "--no-fail",
        action="store_true",
        help="exit 0 even when the report records SLO violations",
    )
    add_logging(p_srep)

    p_drift = sub.add_parser(
        "drift",
        help="cost-model drift report: predicted vs measured times of a "
        "finished sweep CSV",
    )
    p_drift.add_argument("csv", help="sweep CSV written by 'sweep --csv'")
    p_drift.add_argument(
        "--gpu", choices=sorted(PRESETS), default="A100", help="simulated board"
    )
    p_drift.add_argument(
        "--calibration",
        default=None,
        help="JSON measurement cache; adds a calibrated-residual column",
    )
    add_logging(p_drift)

    p_pg = sub.add_parser(
        "perf-bench",
        help="run the pinned perf-gate grid and write a BENCH_<rev>.json "
        "snapshot (simulated time + emulation wall-clock per cell); "
        "compares against the previous snapshot and fails on hot-path "
        "wall-clock regressions",
    )
    p_pg.add_argument(
        "--repeats", type=int, default=3, help="wall-clock takes best-of-N"
    )
    p_pg.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="fractional wall-clock regression allowed on hot cells "
        "(default 0.25)",
    )
    p_pg.add_argument(
        "--gpu", choices=sorted(PRESETS), default="A100", help="simulated board"
    )
    p_pg.add_argument("--seed", type=int, default=0)
    p_pg.add_argument(
        "--out", default=".", help="directory for the BENCH_<rev>.json snapshot"
    )
    p_pg.add_argument(
        "--baseline",
        default=None,
        help="snapshot to gate against (default: newest BENCH_*.json in "
        "--out, other than the one just written)",
    )
    p_pg.add_argument(
        "--no-gate",
        action="store_true",
        help="measure and write the snapshot without comparing",
    )
    p_pg.add_argument(
        "--tiny",
        action="store_true",
        help="use the reduced smoke grid instead of the pinned grid",
    )
    add_logging(p_pg)

    p_rb = sub.add_parser(
        "recall-bench",
        help="Pareto sweep of the approximate tier (recall vs simulated "
        "time vs QPS per pinned regime) plus a mixed-load serving run; "
        "gates empirical recall against the promised floors and the "
        "acceptance regime's speedup headline",
    )
    p_rb.add_argument(
        "--gpu", choices=sorted(PRESETS), default="A100", help="simulated board"
    )
    p_rb.add_argument("--seed", type=int, default=0)
    p_rb.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the repro.bench.recall/v1 snapshot JSON here",
    )
    p_rb.add_argument(
        "--tiny",
        action="store_true",
        help="use the reduced smoke grid instead of the pinned regimes "
        "(skips the acceptance-speedup gate)",
    )
    p_rb.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the mixed-load serving gate (offline sweep only)",
    )
    p_rb.add_argument(
        "--no-gate",
        action="store_true",
        help="measure and report without gating",
    )
    add_logging(p_rb)

    p_cb = sub.add_parser(
        "cluster-bench",
        help="node-count scaling sweep of the simulated cluster (capacity "
        "vs nodes at the 200 QPS acceptance load) plus a chaos cell under "
        "a pinned node-fault plan; gates near-linear scaling and "
        "availability under replica loss",
    )
    p_cb.add_argument(
        "--nodes",
        default=None,
        metavar="N,N,...",
        help="comma-separated node counts to sweep (default 1,2,4)",
    )
    p_cb.add_argument(
        "--replication",
        type=int,
        default=2,
        help="replicas per data partition (default 2)",
    )
    p_cb.add_argument(
        "--placement",
        choices=CLUSTER_PLACEMENTS,
        default="least-loaded",
        help="replica placement policy (default least-loaded)",
    )
    p_cb.add_argument(
        "--partitions",
        type=int,
        default=None,
        help="data partitions per large request (default: node count)",
    )
    p_cb.add_argument(
        "--gpu", choices=sorted(PRESETS), default="A100", help="simulated board"
    )
    p_cb.add_argument("--seed", type=int, default=0)
    p_cb.add_argument(
        "--workers",
        type=int,
        default=1,
        help="host threads running node replicas (results are identical "
        "for any value; >1 only changes wall-clock)",
    )
    p_cb.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="JSON fault plan (repro.faults.plan/v1) for the chaos cell; "
        "default is the pinned plan mirrored at "
        "benchmarks/fault_plans/cluster.json",
    )
    p_cb.add_argument(
        "--no-chaos",
        action="store_true",
        help="skip the chaos cell (scaling sweep only)",
    )
    p_cb.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the repro.bench.cluster/v1 snapshot JSON here",
    )
    p_cb.add_argument(
        "--tiny",
        action="store_true",
        help="use the reduced smoke workload instead of the pinned "
        "acceptance load (skips the scaling-speedup gate)",
    )
    p_cb.add_argument(
        "--no-gate",
        action="store_true",
        help="measure and report without gating",
    )
    add_logging(p_cb)

    p_ab = sub.add_parser(
        "adapt-bench",
        help="regret bench of online adaptive dispatch: replay a decision "
        "stream with a mid-run device-spec shift and gate the adaptive "
        "dispatcher's post-shift cumulative regret against static "
        "cost-model dispatch (plus byte-identity and no-telemetry no-op)",
    )
    p_ab.add_argument(
        "--gpu",
        choices=sorted(PRESETS),
        default="A100",
        help="the board the cost model believes it is on",
    )
    p_ab.add_argument(
        "--gpu-shift",
        choices=sorted(PRESETS),
        default="V100",
        help="the board the device silently becomes mid-stream",
    )
    p_ab.add_argument("--seed", type=int, default=0)
    p_ab.add_argument(
        "--decisions",
        type=int,
        default=None,
        help="length of the dispatch decision stream (default 240, "
        "tiny 80); the shift lands halfway",
    )
    p_ab.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the repro.bench.adapt/v1 snapshot JSON here",
    )
    p_ab.add_argument(
        "--tiny",
        action="store_true",
        help="use the reduced smoke grid instead of the pinned regimes",
    )
    p_ab.add_argument(
        "--no-gate",
        action="store_true",
        help="measure and report without gating",
    )
    add_logging(p_ab)

    p_ins = sub.add_parser(
        "inspect",
        help="validate and summarise a telemetry artifact "
        "(manifest.json, metrics.json, trace JSON, or a sweep CSV)",
    )
    p_ins.add_argument("path", help="artifact file to inspect")
    add_logging(p_ins)

    return parser


def setup_logging(args) -> None:
    """Configure the ``repro`` logger from ``-v``/``-q`` (idempotent).

    Status and progress go through this logger to stderr; results stay on
    stdout.  Default level INFO; ``-v`` adds per-point DEBUG detail,
    ``-q`` keeps errors only.
    """
    if getattr(args, "quiet", False):
        level = logging.ERROR
    elif getattr(args, "verbose", 0):
        level = logging.DEBUG
    else:
        level = logging.INFO
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(message)s"))
    logger.addHandler(handler)


def _progress_printer(args):
    """ProgressEvent callback logging sweep completion, or None.

    ``--progress`` logs every finished point at INFO; ``-v`` alone gets
    the same stream at DEBUG, so a verbose run is always narrated.
    """
    explicit = getattr(args, "progress", False)
    verbose = getattr(args, "verbose", 0) > 0
    if not (explicit or verbose):
        return None
    level = logging.INFO if explicit else logging.DEBUG

    def show(ev) -> None:
        eta = "?" if ev.eta_s is None else f"{ev.eta_s:.0f}s"
        logger.log(
            level,
            "[%d/%d] %5.1f%%  elapsed %.0fs  eta %s  last: %s n=%d k=%d (%s)",
            ev.done,
            ev.total,
            ev.fraction * 100,
            ev.elapsed_s,
            eta,
            ev.point.algo,
            ev.point.n,
            ev.point.k,
            ev.point.status,
        )

    return show


def _point_progress(args, total: int | None = None):
    """Per-point progress callback for code paths taking BenchPoint."""
    explicit = getattr(args, "progress", False)
    verbose = getattr(args, "verbose", 0) > 0
    if not (explicit or verbose):
        return None
    level = logging.INFO if explicit else logging.DEBUG
    state = {"done": 0}

    def show(point) -> None:
        state["done"] += 1
        suffix = f"/{total}" if total else ""
        logger.log(
            level,
            "[%d%s] %s n=%d k=%d (%s)",
            state["done"],
            suffix,
            point.algo,
            point.n,
            point.k,
            point.status,
        )

    return show


@contextmanager
def _telemetry_session(args):
    """Install tracer/metrics sessions for ``--trace``/``--metrics``.

    Yields ``(tracer | None, registry | None)``; on clean exit the
    requested artifact files are written (and schema-validated).
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    with ExitStack() as stack:
        tracer = stack.enter_context(obs.trace_session()) if trace_path else None
        registry = (
            stack.enter_context(obs.metrics_session()) if metrics_path else None
        )
        yield tracer, registry
        if tracer is not None:
            path = obs.write_trace(tracer.events, trace_path)
            logger.info("wrote trace (%d spans) to %s", len(tracer), path)
        if registry is not None:
            path = registry.write(metrics_path)
            logger.info("wrote %d metrics to %s", len(registry), path)


def cmd_topk(args) -> int:
    with _telemetry_session(args) as (tracer, _registry):
        with obs.span(
            f"point {args.algo}",
            cat="point",
            algo=args.algo,
            n=args.n,
            k=args.k,
            batch=args.batch,
        ) as point_span:
            run = simulate_topk(
                args.algo,
                distribution=args.distribution,
                n=args.n,
                k=args.k,
                batch=args.batch,
                spec=get_spec(args.gpu),
                cap=args.cap,
                seed=args.seed,
                largest=args.largest,
            )
        if tracer is not None:
            label = (
                f"sim {args.algo} {args.distribution} "
                f"n={args.n} k={args.k} b={args.batch}"
            )
            tracer.extend(
                timeline_spans(
                    run.device.timeline,
                    lane_prefix=label,
                    base_us=point_span.start_us,
                    device=run.device,
                )
            )
    direction = "largest" if args.largest else "smallest"
    print(
        f"{args.algo}: {direction} {args.k} of {args.n:,} "
        f"({args.distribution}, batch {args.batch}) on {args.gpu}"
    )
    print(f"simulated time: {format_time(run.time)}  [{run.mode} mode]")
    c = run.device.counters
    print(
        f"kernels: {c.kernel_launches}, device traffic: "
        f"{c.bytes_total / 1e6:.2f} MB, PCIe transfers: {c.pcie_transfers}, "
        f"syncs: {c.syncs}"
    )
    if run.result is not None:
        vals = run.result.values if run.result.values.ndim == 1 else run.result.values[0]
        print(f"first results: {vals[: min(5, len(vals))]}")
    if args.sol:
        print("\nper-kernel Speed of Light:")
        print(
            format_table(
                ["kernel", "time %", "memory SOL", "compute SOL"],
                [r.row() for r in sol_report(run.device)],
            )
        )
    if args.timeline:
        print("\ntimeline:")
        print(run.device.timeline.render())
    if args.roofline:
        print("\nroofline:")
        print(render_roofline(run.device))
    return 0


def cmd_compare(args) -> int:
    rows = []
    for algo in algorithm_names():
        try:
            run = simulate_topk(
                algo,
                distribution=args.distribution,
                n=args.n,
                k=args.k,
                batch=args.batch,
                spec=get_spec(args.gpu),
                cap=args.cap,
                seed=args.seed,
            )
        except Exception as exc:  # UnsupportedProblem etc.
            rows.append((float("inf"), algo, "-", str(exc)[:40]))
            continue
        note = run.mode if run.dispatch is None else f"{run.mode} -> {run.dispatch}"
        rows.append((run.time, algo, format_time(run.time), note))
    rows.sort()
    print(
        f"n={args.n:,} k={args.k} batch={args.batch} "
        f"{args.distribution} on {args.gpu}:"
    )
    print(
        format_table(
            ["rank", "algorithm", "time", "mode/notes"],
            [(i + 1, a, t, m) for i, (_, a, t, m) in enumerate(rows)],
        )
    )
    return 0


def cmd_sweep(args) -> int:
    from .exec import parallel_sweep

    points = args.points
    if points is None:
        points = (
            [1 << p for p in range(12, 27, 2)]
            if args.vary == "n"
            else [1 << p for p in range(3, 12)]
        )
    ns = points if args.vary == "n" else (args.n,)
    ks = points if args.vary == "k" else (args.k,)
    algos = ALL_ALGORITHMS + ("auto",) if args.with_auto else ALL_ALGORITHMS
    started = time.perf_counter()
    with _telemetry_session(args) as (_tracer, _registry):
        result = parallel_sweep(
            algos=algos,
            distributions=(args.distribution,),
            ns=ns,
            ks=ks,
            batches=(args.batch,),
            spec=get_spec(args.gpu),
            cap=args.cap,
            seed=args.seed,
            workers=args.workers,
            timeout=args.timeout,
            progress=_progress_printer(args),
        )
    wall = time.perf_counter() - started
    artifacts = {}
    if args.csv:
        # write before plotting so status rows survive even when nothing
        # measured (e.g. every point timed out)
        path = write_csv(result.points, args.csv)
        artifacts["csv"] = path.name
        logger.info("wrote %d points to %s", len(result.points), path)
    for kind in ("trace", "metrics"):
        if getattr(args, kind, None):
            artifacts[kind] = Path(getattr(args, kind)).name
    # provenance next to the first artifact written (csv, else metrics,
    # else trace); a sweep with no artifacts leaves nothing behind
    anchor = args.csv or args.metrics or args.trace
    if anchor:
        manifest = obs.build_manifest(
            command="sweep",
            config={
                "algos": list(algos),
                "distribution": args.distribution,
                "vary": args.vary,
                "ns": list(ns),
                "ks": list(ks),
                "batch": args.batch,
                "gpu": args.gpu,
                "cap": args.cap,
                "workers": args.workers,
                "timeout": args.timeout,
            },
            seed=args.seed,
            points=result.points,
            wall_time_s=wall,
            artifacts=artifacts,
        )
        path = obs.write_manifest(
            manifest, Path(anchor).resolve().parent / "manifest.json"
        )
        logger.info("wrote run manifest to %s", path)
    if any(p.time is not None for p in result.points):
        fixed = {"k": args.k} if args.vary == "n" else {"n": args.n}
        print(
            plot_sweep(
                result,
                algos=algos,
                distribution=args.distribution,
                batch=args.batch,
                vary=args.vary,
                fixed=fixed,
            )
        )
    else:
        from collections import Counter

        counts = Counter(p.status for p in result.points)
        summary = ", ".join(f"{v} {s}" for s, v in sorted(counts.items()))
        print(f"no measured points to plot ({summary})")
    if args.with_auto:
        print("\nauto dispatch choices:")
        print(format_dispatch_table(result.points))
    return 0


def cmd_auto(args) -> int:
    from .perf.calibration import CalibrationCache
    from .perf.costmodel import rank_algorithms

    calibration = None
    if args.calibration:
        calibration = CalibrationCache.load(args.calibration)
    spec = get_spec(args.gpu)
    ranking = rank_algorithms(
        n=args.n, k=args.k, batch=args.batch, spec=spec, calibration=calibration
    )
    print(
        f"cost-model ranking for n={args.n:,} k={args.k} batch={args.batch} "
        f"on {args.gpu}:"
    )
    print(
        format_table(
            ["rank", "algorithm", "predicted", "source"],
            [
                (i + 1, p.algo, format_time(p.time), p.source)
                for i, p in enumerate(ranking)
            ],
        )
    )
    run = simulate_topk(
        "auto",
        distribution=args.distribution,
        n=args.n,
        k=args.k,
        batch=args.batch,
        spec=spec,
        cap=args.cap,
        seed=args.seed,
        calibration=calibration,
    )
    print(
        f"\ndispatched to: {run.dispatch}\n"
        f"simulated time: {format_time(run.time)}  [{run.mode} mode]"
    )
    return 0


def cmd_table2(args) -> int:
    ns = [1 << p for p in (11, 15, 20, 25, 30)]
    progress = _point_progress(args)
    result = sweep(
        distributions=("uniform", "normal", "adversarial"),
        ns=ns,
        ks=(32, 256, 32768),
        batches=(1,),
        cap=args.cap,
        seed=args.seed,
        workers=args.workers,
        timeout=args.timeout,
        progress=progress,
    )
    batch100 = sweep(
        distributions=("uniform", "normal", "adversarial"),
        ns=[n for n in ns if n <= 1 << 24],
        ks=(32, 256, 32768),
        batches=(100,),
        cap=args.cap,
        seed=args.seed,
        workers=args.workers,
        timeout=args.timeout,
        progress=progress,
    )
    for p in batch100.points:
        result.add(p)
    rows = table2(result)
    print(
        format_table(
            ["batch", "distribution", "AIR vs Radix", "Grid vs Block", "AIR vs SOTA"],
            [
                (
                    r.batch,
                    r.distribution,
                    r.air_vs_radix.formatted(),
                    r.grid_vs_block.formatted(),
                    r.air_vs_sota.formatted(),
                )
                for r in rows
            ],
        )
    )
    return 0


def cmd_reproduce(args) -> int:
    progress = _point_progress(args)
    with _telemetry_session(args):
        suite = run_paper_suite(
            out_dir=args.out,
            cap=args.cap,
            full=args.full,
            seed=args.seed,
            workers=args.workers,
            timeout=args.timeout,
            progress=progress,
        )
    if args.out:
        logger.info("suite artifacts written under %s", args.out)
    print(suite.render())
    return 0


def cmd_serve_bench(args) -> int:
    from .faults import FaultPlan
    from .serve import LoadSpec, ServeConfig, run_serve_bench

    plan = FaultPlan.load(args.faults) if args.faults else None
    spec = LoadSpec(
        qps=args.qps,
        duration_s=args.duration,
        n=args.n,
        k=args.k,
        largest=args.largest,
        distribution=args.distribution,
        arrival=args.arrival,
        payload_pool=args.pool,
        deadline_s=None if args.deadline_ms is None else args.deadline_ms / 1e3,
        min_recall=args.min_recall,
        approx_fraction=args.approx_fraction if args.min_recall else 0.0,
        seed=args.seed,
    )
    store = None
    if args.adaptive:
        if args.algo != "auto":
            logger.error("--adaptive requires --algo auto")
            return 2
        from .perf.adaptive import CorrectionStore

        if args.corrections and Path(args.corrections).exists():
            store = CorrectionStore.load(args.corrections)
            logger.info(
                "seeded correction store from %s (%d corrections)",
                args.corrections,
                len(store),
            )
    config = ServeConfig(
        algo=args.algo,
        device=args.gpu,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        queue_limit=args.queue_limit,
        shards=args.shards,
        seed=args.seed,
        faults=plan,
        window_s=args.window_ms / 1e3,
        workers=args.serve_workers,
        adaptive=args.adaptive,
        corrections=store,
    )
    started = time.perf_counter()
    with _telemetry_session(args) as (tracer, _registry):
        with obs.span(
            "serve-bench", cat="serve", qps=args.qps, duration=args.duration
        ) as serve_span:
            report, service = run_serve_bench(spec, config)
        if tracer is not None:
            # re-base the virtual-time request/node lanes onto the wall
            # clock of the enclosing span, same convention as the
            # simulated device timelines
            tracer.extend(
                service.telemetry_spans(base_us=serve_span.start_us)
            )
    wall = time.perf_counter() - started
    print(report.format())
    if args.adaptive:
        s = report.stats
        print(
            f"adaptation: observations={s.adapt_observations} "
            f"folds={s.adapt_folds} explored={s.adapt_explored}"
            + (
                ""
                if s.adapt_observations
                else "  (inactive: no metrics session — pass --metrics)"
            )
        )
        if args.corrections and service.adaptation is not None:
            path = service.adaptation.corrections.save(args.corrections)
            logger.info("wrote correction store to %s", path)

    slos = obs.DEFAULT_SLOS
    if args.slo and args.slo != "default":
        try:
            slos = obs.load_slo_specs(args.slo)
        except (OSError, ValueError) as exc:
            logger.error("cannot load SLO spec %s: %s", args.slo, exc)
            return 1
    serve_report = None
    if args.slo or args.report or args.out:
        serve_report = obs.build_serve_report(
            service.telemetry,
            report.stats,
            config={
                "qps": args.qps,
                "duration_s": args.duration,
                "n": args.n,
                "k": args.k,
                "algo": args.algo,
                "gpu": args.gpu,
                "shards": args.shards,
                "seed": args.seed,
                **(
                    {
                        "min_recall": args.min_recall,
                        "approx_fraction": args.approx_fraction,
                    }
                    if args.min_recall is not None
                    else {}
                ),
            },
            slos=slos,
        )
    if args.report:
        path = obs.write_serve_report(serve_report, args.report)
        logger.info(
            "wrote serve report (%d windows) to %s",
            len(serve_report["windows"]),
            path,
        )
    if args.slo:
        for entry in serve_report["slos"]:
            verdict = "VIOLATED" if entry["violated"] else "ok"
            print(
                f"  SLO [{verdict}] {entry['name']}: "
                f"sli {entry['sli'] * 100:.2f}% vs target "
                f"{entry['target'] * 100:g}%  "
                f"max burn {entry['max_burn_rate']:.2f}x"
            )
    if args.out:
        # one BenchPoint per executed micro-batch: the serving analogue of
        # a sweep row, so manifests stay schema-compatible with PR 2
        points = [
            BenchPoint(
                algo=rec.algo,
                distribution=spec.distribution,
                n=rec.n,
                k=rec.k,
                batch=rec.size,
                time=rec.duration_s,
            )
            for rec in service.batch_records
        ]
        artifacts = {
            kind: Path(getattr(args, kind)).name
            for kind in ("trace", "metrics")
            if getattr(args, kind, None)
        }
        report_path = obs.write_serve_report(
            serve_report, Path(args.out) / "serve_report.json"
        )
        artifacts["serve_report"] = report_path.name
        logger.info(
            "wrote serve report (%d windows) to %s",
            len(serve_report["windows"]),
            report_path,
        )
        manifest = obs.build_manifest(
            command="serve-bench",
            config={
                "qps": args.qps,
                "duration_s": args.duration,
                "n": args.n,
                "k": args.k,
                "algo": args.algo,
                "gpu": args.gpu,
                "arrival": args.arrival,
                "pool": args.pool,
                "max_batch": args.max_batch,
                "max_delay_ms": args.max_delay_ms,
                "queue_limit": args.queue_limit,
                "shards": args.shards,
                "served": report.stats.served,
                "shed": report.stats.shed,
                "timeout": report.stats.timeout,
                # quality accounting appears only for mixed-load runs so
                # exact-only manifests keep their earlier shape
                **(
                    {
                        "min_recall": args.min_recall,
                        "approx_fraction": args.approx_fraction,
                        "approx_served": report.stats.approx_served,
                        "recall_violations": report.stats.recall_violations,
                    }
                    if args.min_recall is not None
                    else {}
                ),
                # availability accounting appears only for fault runs so
                # fault-free manifests keep their PR-3 shape
                **(
                    {
                        "faults_plan": Path(args.faults).name,
                        "degraded": report.stats.degraded,
                        "failed": report.stats.failed,
                        "availability": report.stats.availability,
                        "faults_injected": report.stats.faults,
                        "retries": report.stats.retries,
                        "hedges": report.stats.hedges,
                    }
                    if plan is not None
                    else {}
                ),
            },
            seed=args.seed,
            points=points,
            wall_time_s=wall,
            artifacts=artifacts or None,
        )
        path = obs.write_manifest(manifest, Path(args.out) / "manifest.json")
        logger.info("wrote run manifest to %s", path)
    if args.slo and serve_report["violations"]:
        logger.error(
            "SLO violations: %s", ", ".join(serve_report["violations"])
        )
        return 1
    return 0


def cmd_serve_report(args) -> int:
    path = Path(args.path)
    try:
        payload = json.loads(path.read_text())
        obs.validate_serve_report(payload)
    except (OSError, ValueError) as exc:
        logger.error("cannot read serve report %s: %s", path, exc)
        return 1
    print(obs.render_serve_report(payload))
    if payload["violations"] and not args.no_fail:
        return 1
    return 0


def cmd_drift(args) -> int:
    from .obs.drift import drift_report
    from .perf.calibration import CalibrationCache

    try:
        points = read_csv(args.csv)
    except (OSError, ValueError) as exc:
        logger.error("cannot read %s: %s", args.csv, exc)
        return 1
    calibration = (
        CalibrationCache.load(args.calibration) if args.calibration else None
    )
    rows = drift_report(points, spec=get_spec(args.gpu), calibration=calibration)
    measured = sum(1 for p in points if p.time is not None)
    logger.info(
        "%d points in %s (%d measured, %d predictable)",
        len(points),
        args.csv,
        measured,
        sum(r.points for r in rows),
    )
    if not rows:
        print("no predictable measured points in this sweep")
        return 0
    print(f"cost-model drift vs simulated times on {args.gpu}:")
    headers = ["algorithm", "points", "geomean", "min", "max", "rmse(log2)"]
    if calibration is not None:
        headers.append("calibrated")
    table_rows = []
    for r in rows:
        row = [
            r.algo,
            r.points,
            f"{r.geomean_ratio:.3f}x",
            f"{r.min_ratio:.3f}x",
            f"{r.max_ratio:.3f}x",
            f"{r.rmse_log2:.3f}",
        ]
        if calibration is not None:
            row.append(f"{r.calibrated_geomean:.3f}x")
        table_rows.append(row)
    print(format_table(headers, table_rows))
    print(
        "\n(geomean 1.000x = unbiased model; ratios are simulated/predicted "
        "time per point)"
    )
    return 0


def cmd_perf_bench(args) -> int:
    from .bench import perfgate

    grid = perfgate.TINY_GRID if args.tiny else perfgate.PINNED_GRID
    logger.info(
        "perf-gate: %d cells, best-of-%d wall clock", len(grid), args.repeats
    )

    def show(entry) -> None:
        logger.info(
            "%s n=%d k=%d batch=%d: sim %s wall %.4fs%s",
            entry["algo"],
            entry["n"],
            entry["k"],
            entry["batch"],
            format_time(entry["sim_time_s"]),
            entry["wall_s"],
            (
                f" (fused speedup {entry['fused_speedup']:.2f}x)"
                if "fused_speedup" in entry
                else ""
            ),
        )

    snapshot = perfgate.collect_snapshot(
        grid,
        gpu=args.gpu,
        repeats=args.repeats,
        seed=args.seed,
        progress=show,
    )
    rows = [
        (
            c["algo"],
            c["n"],
            c["k"],
            c["batch"],
            "hot" if c["hot"] else "cold",
            format_time(c["sim_time_s"]),
            f"{c['wall_s']:.4f}s",
            f"{c['fused_speedup']:.2f}x" if "fused_speedup" in c else "-",
        )
        for c in snapshot["cells"]
    ]
    print(
        format_table(
            ["algo", "n", "k", "batch", "gate", "sim", "wall", "fused speedup"],
            rows,
        )
    )
    if "batch100_fused_speedup" in snapshot:
        print(
            "batch=100 fused speedup (wall-weighted): "
            f"{snapshot['batch100_fused_speedup']:.2f}x"
        )
    # resolve and read the baseline *before* writing: re-running at the
    # same revision overwrites the previous snapshot, which must still be
    # the one gated against
    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else perfgate.find_baseline(args.out)
    )
    baseline = (
        perfgate.load_snapshot(baseline_path)
        if baseline_path is not None
        else None
    )
    path = perfgate.write_snapshot(snapshot, args.out)
    print(f"snapshot: {path}")
    if args.no_gate:
        return 0
    if baseline is None:
        print("no baseline snapshot found; gate skipped")
        return 0
    tolerance = (
        args.tolerance if args.tolerance is not None
        else perfgate.DEFAULT_TOLERANCE
    )
    report = perfgate.compare_snapshots(baseline, snapshot, tolerance=tolerance)
    print(f"baseline: {baseline_path} (rev {baseline['rev']})")
    for note in report.notes:
        print(f"note: {note}")
    for line in report.regressions:
        print(f"REGRESSION: {line}")
    if not report.ok:
        logger.error(
            "%d hot-path wall-clock regression(s)", len(report.regressions)
        )
        return 1
    print("perf gate: ok")
    return 0


def cmd_recall_bench(args) -> int:
    from .bench import recallbench

    regimes = (
        recallbench.TINY_REGIMES if args.tiny else recallbench.DEFAULT_REGIMES
    )
    logger.info(
        "recall-bench: %d regimes x %d configs%s",
        len(regimes),
        len(recallbench.APPROX_VARIANTS),
        "" if args.no_serve else " + mixed-load serve gate",
    )

    def show(cell, entry) -> None:
        logger.info(
            "%s n=%d k=%d batch=%d %s: sim %s (%.2fx) empirical recall %.4f",
            entry["algo"],
            cell.n,
            cell.k,
            cell.batch,
            entry["label"],
            format_time(entry["sim_time_s"]),
            entry["speedup"],
            entry["empirical_recall"],
        )

    snapshot = recallbench.collect_snapshot(
        regimes,
        gpu=args.gpu,
        seed=args.seed,
        serve=not args.no_serve,
        progress=show,
    )
    print(recallbench.render_recall_report(snapshot))
    if args.out:
        path = recallbench.write_snapshot(snapshot, args.out)
        print(f"snapshot: {path}")
    if args.no_gate:
        return 0
    failures = recallbench.gate_recall(snapshot)
    for line in failures:
        print(f"GATE FAIL: {line}")
    if failures:
        logger.error("%d recall-gate failure(s)", len(failures))
        return 1
    print("recall gate: ok")
    return 0


def cmd_adapt_bench(args) -> int:
    from .bench import adaptbench

    if args.gpu_shift == args.gpu:
        logger.error("--gpu-shift must differ from --gpu")
        return 2
    regimes = (
        adaptbench.TINY_REGIMES if args.tiny else adaptbench.DEFAULT_REGIMES
    )
    decisions = args.decisions or (80 if args.tiny else 240)
    logger.info(
        "adapt-bench: %d regimes x %d candidates, %d decisions, "
        "%s -> %s shift at %d",
        len(regimes),
        len(adaptbench.CANDIDATES),
        decisions,
        args.gpu,
        args.gpu_shift,
        decisions // 2,
    )

    def show(cell, entry) -> None:
        logger.info(
            "n=%d k=%d batch=%d: static %s, oracle %s -> %s%s",
            cell.n,
            cell.k,
            cell.batch,
            entry["static_algo"],
            entry["oracle_pre"],
            entry["oracle_post"],
            " (flip)" if entry["oracle_pre"] != entry["oracle_post"] else "",
        )

    snapshot = adaptbench.collect_snapshot(
        regimes,
        gpu=args.gpu,
        gpu_shift=args.gpu_shift,
        seed=args.seed,
        decisions=decisions,
        progress=show,
    )
    print(adaptbench.render_adapt_report(snapshot))
    if args.out:
        path = adaptbench.write_snapshot(snapshot, args.out)
        print(f"snapshot: {path}")
    if args.no_gate:
        return 0
    failures = adaptbench.gate_adapt(snapshot)
    for line in failures:
        print(f"GATE FAIL: {line}")
    if failures:
        logger.error("%d adapt-gate failure(s)", len(failures))
        return 1
    print("adapt gate: ok")
    return 0


def cmd_cluster_bench(args) -> int:
    from .bench import clusterbench
    from .faults import FaultPlan

    if args.nodes:
        try:
            node_counts = tuple(
                int(part) for part in args.nodes.split(",") if part.strip()
            )
        except ValueError:
            logger.error("--nodes must be a comma-separated list of ints")
            return 2
        if not node_counts or any(n < 1 for n in node_counts):
            logger.error("--nodes needs at least one count >= 1")
            return 2
    else:
        node_counts = clusterbench.DEFAULT_NODE_COUNTS
    if args.no_chaos:
        chaos_plan = None
    elif args.faults:
        chaos_plan = FaultPlan.load(args.faults)
    else:
        chaos_plan = clusterbench.DEFAULT_CHAOS_PLAN
    logger.info(
        "cluster-bench: nodes %s, R=%d, placement %s%s",
        ",".join(str(n) for n in node_counts),
        args.replication,
        args.placement,
        "" if chaos_plan is None else " + chaos cell",
    )

    def show(cell) -> None:
        logger.info(
            "%d node(s): capacity %.0f rps (%.2fx), availability %.4f",
            cell["nodes"],
            cell["capacity_rps"],
            cell["speedup"],
            cell["availability"],
        )

    snapshot = clusterbench.collect_snapshot(
        node_counts=node_counts,
        replication=args.replication,
        placement=args.placement,
        partitions=args.partitions,
        gpu=args.gpu,
        seed=args.seed,
        workers=args.workers,
        chaos_plan=chaos_plan,
        tiny=args.tiny,
        progress=show,
    )
    print(clusterbench.render_cluster_report(snapshot))
    if args.out:
        path = clusterbench.write_snapshot(snapshot, args.out)
        print(f"snapshot: {path}")
    if args.no_gate:
        return 0
    # the tiny smoke workload is launch-bound, so only the full
    # acceptance load is held to the scaling floor
    failures = clusterbench.gate_cluster(
        snapshot, min_speedup=0.0 if args.tiny else clusterbench.ACCEPT_SPEEDUP
    )
    for line in failures:
        print(f"GATE FAIL: {line}")
    if failures:
        logger.error("%d cluster-gate failure(s)", len(failures))
        return 1
    print("cluster gate: ok")
    return 0


def cmd_inspect(args) -> int:
    path = Path(args.path)
    if path.suffix == ".csv":
        try:
            points = read_csv(path)
        except (OSError, ValueError) as exc:
            logger.error("cannot read %s: %s", path, exc)
            return 1
        status: dict[str, int] = {}
        for p in points:
            status[p.status] = status.get(p.status, 0) + 1
        print(f"{path}: sweep CSV, {len(points)} points")
        print(
            format_table(
                ["status", "points"], sorted(status.items())
            )
        )
        return 0
    payload = json.loads(path.read_text())
    if isinstance(payload, dict) and "traceEvents" in payload:
        obs.validate_trace(payload)
        events = payload["traceEvents"]
        durations = [e for e in events if e["ph"] == "X"]
        pids = {e["pid"] for e in events}
        lanes = {(e["pid"], e["tid"]) for e in events}
        print(f"{path}: valid chrome trace")
        print(
            f"{len(durations)} spans across {len(pids)} processes / "
            f"{len(lanes)} lanes"
        )
        return 0
    schema = payload.get("schema") if isinstance(payload, dict) else None
    if schema == "repro.obs.manifest/v1":
        obs.validate_manifest(payload)
        print(f"{path}: valid run manifest")
        rows = [
            ("command", payload["command"]),
            ("seed", payload["seed"]),
            ("total points", payload["grid"]["total_points"]),
            ("status", ", ".join(f"{k}={v}" for k, v in payload["status"].items())),
            ("wall time", f"{payload['wall_time_s']:.2f}s"),
            ("versions", ", ".join(f"{k} {v}" for k, v in payload["versions"].items())),
            (
                "kernel launches",
                payload["device_counters"]["kernel_launches"],
            ),
        ]
        print(format_table(["field", "value"], rows))
        return 0
    if schema == "repro.obs.serve_report/v1":
        obs.validate_serve_report(payload)
        totals = payload["totals"]
        print(f"{path}: valid serve report")
        rows = [
            ("windows", f"{len(payload['windows'])} x {payload['window_s']:g}s"),
            ("requests", totals["requests"]),
            ("availability", f"{totals['availability'] * 100:.2f}%"),
            (
                "latency",
                "  ".join(
                    f"p{q:g}={totals[f'latency_p{q:g}_s'] * 1e3:.3f}ms"
                    if totals[f"latency_p{q:g}_s"] is not None
                    else f"p{q:g}=-"
                    for q in (50.0, 95.0, 99.0)
                ),
            ),
            (
                "slos",
                ", ".join(
                    f"{s['name']} ({'VIOLATED' if s['violated'] else 'ok'})"
                    for s in payload["slos"]
                )
                or "-",
            ),
        ]
        print(format_table(["field", "value"], rows))
        return 0
    if schema == "repro.bench.recall/v1":
        from .bench.recallbench import SNAPSHOT_SCHEMA, gate_recall

        obs.schema.validate(payload, SNAPSHOT_SCHEMA)
        failures = gate_recall(payload)
        points = sum(len(c["points"]) for c in payload["cells"])
        print(
            f"{path}: valid recall-bench snapshot "
            f"({len(payload['cells'])} regimes, {points} points, "
            f"gate {'FAIL' if failures else 'ok'})"
        )
        return 0
    if schema == "repro.bench.cluster/v1":
        from .bench.clusterbench import SNAPSHOT_SCHEMA, gate_cluster

        obs.schema.validate(payload, SNAPSHOT_SCHEMA)
        failures = gate_cluster(payload, min_speedup=0.0)
        counts = ",".join(str(c["nodes"]) for c in payload["sweep"])
        chaos = payload.get("chaos")
        print(
            f"{path}: valid cluster-bench snapshot "
            f"(nodes {counts}, chaos "
            f"{'absent' if chaos is None else 'present'}, "
            f"gate {'FAIL' if failures else 'ok'})"
        )
        return 0
    if schema == "repro.bench.adapt/v1":
        from .bench.adaptbench import SNAPSHOT_SCHEMA, gate_adapt

        obs.schema.validate(payload, SNAPSHOT_SCHEMA)
        failures = gate_adapt(payload)
        ratio = payload["post_shift"]["ratio"]
        print(
            f"{path}: valid adapt-bench snapshot "
            f"({len(payload['regimes'])} regimes, "
            f"{payload['gpu']} -> {payload['gpu_shift']}, "
            f"post-shift ratio "
            f"{'inf' if ratio is None else f'{ratio:.2f}x'}, "
            f"gate {'FAIL' if failures else 'ok'})"
        )
        return 0
    if schema == "repro.perf.corrections/v1":
        from .perf.adaptive import CORRECTIONS_SCHEMA

        obs.schema.validate(payload, CORRECTIONS_SCHEMA)
        print(
            f"{path}: valid correction store "
            f"({len(payload['corrections'])} corrections, "
            f"{payload['folds']} folds, epoch {payload['epoch']})"
        )
        return 0
    if schema == "repro.obs.slo/v1":
        obs.validate_slo_spec(payload)
        print(f"{path}: valid SLO spec ({len(payload['slos'])} objectives)")
        return 0
    if schema == "repro.obs.metrics/v1":
        obs.validate_metrics(payload)
        print(f"{path}: valid metrics dump")
        rows = [
            (c["name"], _format_labels(c["labels"]), f"{c['value']:g}")
            for c in payload["counters"]
        ]
        rows += [
            (g["name"], _format_labels(g["labels"]), f"{g['value']:g}")
            for g in payload["gauges"]
        ]
        rows += [
            (
                h["name"],
                _format_labels(h["labels"]),
                f"n={h['count']} mean={h['sum'] / h['count']:.3f}"
                if h["count"]
                else "n=0",
            )
            for h in payload["histograms"]
        ]
        print(format_table(["metric", "labels", "value"], rows))
        return 0
    logger.error("%s: unrecognised artifact (no known schema marker)", path)
    return 1


def _format_labels(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


COMMANDS = {
    "topk": cmd_topk,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "auto": cmd_auto,
    "table2": cmd_table2,
    "reproduce": cmd_reproduce,
    "serve-bench": cmd_serve_bench,
    "serve-report": cmd_serve_report,
    "drift": cmd_drift,
    "perf-bench": cmd_perf_bench,
    "recall-bench": cmd_recall_bench,
    "adapt-bench": cmd_adapt_bench,
    "cluster-bench": cmd_cluster_bench,
    "inspect": cmd_inspect,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
