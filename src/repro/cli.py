"""Command-line interface: run selections, comparisons and sweeps.

Examples::

    python -m repro topk --n 2^20 --k 100 --algo air_topk
    python -m repro compare --n 2^22 --k 256 --distribution adversarial
    python -m repro sweep --vary n --k 256 --points 2^12:2^26
    python -m repro table2
"""

from __future__ import annotations

import argparse
import sys

from . import available_algorithms
from .bench import (
    ALL_ALGORITHMS,
    format_table,
    format_time,
    plot_sweep,
    run_paper_suite,
    sweep,
    table2,
)
from .datagen import DISTRIBUTIONS
from .device import PRESETS, get_spec
from .perf import DEFAULT_EXACT_CAP, render_roofline, simulate_topk, sol_report


def _size(text: str) -> int:
    """Parse '1048576' or '2^20'."""
    if "^" in text:
        base, exp = text.split("^", 1)
        return int(base) ** int(exp)
    return int(text)


def _size_range(text: str) -> list[int]:
    """Parse '2^12:2^26' into the powers of two between the endpoints,
    or a comma-separated explicit list."""
    if ":" in text:
        lo, hi = (_size(part) for part in text.split(":", 1))
        if lo <= 0 or hi < lo:
            raise argparse.ArgumentTypeError(f"bad range {text!r}")
        points = []
        p = 1 << (lo - 1).bit_length()
        p = max(p, 1)
        while p <= hi:
            if p >= lo:
                points.append(p)
            p <<= 1
        return points or [lo]
    return [_size(part) for part in text.split(",")]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel top-k algorithms on a simulated GPU "
            "(reproduction of Zhang et al., SC '23)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--n", type=_size, default=1 << 20, help="list length")
        p.add_argument("--k", type=_size, default=256, help="results per problem")
        p.add_argument("--batch", type=int, default=1, help="problems per run")
        p.add_argument(
            "--distribution",
            choices=DISTRIBUTIONS,
            default="uniform",
        )
        p.add_argument(
            "--gpu", choices=sorted(PRESETS), default="A100", help="simulated board"
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--cap",
            type=_size,
            default=DEFAULT_EXACT_CAP,
            help="max elements materialised; larger runs use scaled execution",
        )

    p_topk = sub.add_parser("topk", help="run one algorithm on one problem")
    add_common(p_topk)
    p_topk.add_argument("--algo", choices=available_algorithms(), default="air_topk")
    p_topk.add_argument("--largest", action="store_true")
    p_topk.add_argument(
        "--sol", action="store_true", help="print the per-kernel SOL table"
    )
    p_topk.add_argument(
        "--timeline", action="store_true", help="print the execution timeline"
    )
    p_topk.add_argument(
        "--roofline", action="store_true", help="print the roofline analysis"
    )

    p_cmp = sub.add_parser("compare", help="rank every algorithm on one problem")
    add_common(p_cmp)

    p_sweep = sub.add_parser("sweep", help="sweep N or K and plot the series")
    add_common(p_sweep)
    p_sweep.add_argument("--vary", choices=("n", "k"), default="n")
    p_sweep.add_argument(
        "--points",
        type=_size_range,
        default=None,
        help="swept values, '2^12:2^26' or comma list",
    )

    p_t2 = sub.add_parser("table2", help="reproduce the paper's Table 2 (reduced grid)")
    p_t2.add_argument("--cap", type=_size, default=DEFAULT_EXACT_CAP)
    p_t2.add_argument("--seed", type=int, default=0)

    p_rep = sub.add_parser(
        "reproduce", help="run the paper's full Section-5 evaluation"
    )
    p_rep.add_argument("--cap", type=_size, default=DEFAULT_EXACT_CAP)
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--full", action="store_true", help="paper-size grids")
    p_rep.add_argument("--out", default=None, help="directory for CSV/txt output")

    return parser


def cmd_topk(args) -> int:
    run = simulate_topk(
        args.algo,
        distribution=args.distribution,
        n=args.n,
        k=args.k,
        batch=args.batch,
        spec=get_spec(args.gpu),
        cap=args.cap,
        seed=args.seed,
        largest=args.largest,
    )
    direction = "largest" if args.largest else "smallest"
    print(
        f"{args.algo}: {direction} {args.k} of {args.n:,} "
        f"({args.distribution}, batch {args.batch}) on {args.gpu}"
    )
    print(f"simulated time: {format_time(run.time)}  [{run.mode} mode]")
    c = run.device.counters
    print(
        f"kernels: {c.kernel_launches}, device traffic: "
        f"{c.bytes_total / 1e6:.2f} MB, PCIe transfers: {c.pcie_transfers}, "
        f"syncs: {c.syncs}"
    )
    if run.result is not None:
        vals = run.result.values if run.result.values.ndim == 1 else run.result.values[0]
        print(f"first results: {vals[: min(5, len(vals))]}")
    if args.sol:
        print("\nper-kernel Speed of Light:")
        print(
            format_table(
                ["kernel", "time %", "memory SOL", "compute SOL"],
                [r.row() for r in sol_report(run.device)],
            )
        )
    if args.timeline:
        print("\ntimeline:")
        print(run.device.timeline.render())
    if args.roofline:
        print("\nroofline:")
        print(render_roofline(run.device))
    return 0


def cmd_compare(args) -> int:
    rows = []
    for algo in available_algorithms():
        try:
            run = simulate_topk(
                algo,
                distribution=args.distribution,
                n=args.n,
                k=args.k,
                batch=args.batch,
                spec=get_spec(args.gpu),
                cap=args.cap,
                seed=args.seed,
            )
        except Exception as exc:  # UnsupportedProblem etc.
            rows.append((float("inf"), algo, "-", str(exc)[:40]))
            continue
        rows.append((run.time, algo, format_time(run.time), run.mode))
    rows.sort()
    print(
        f"n={args.n:,} k={args.k} batch={args.batch} "
        f"{args.distribution} on {args.gpu}:"
    )
    print(
        format_table(
            ["rank", "algorithm", "time", "mode/notes"],
            [(i + 1, a, t, m) for i, (_, a, t, m) in enumerate(rows)],
        )
    )
    return 0


def cmd_sweep(args) -> int:
    points = args.points
    if points is None:
        points = (
            [1 << p for p in range(12, 27, 2)]
            if args.vary == "n"
            else [1 << p for p in range(3, 12)]
        )
    ns = points if args.vary == "n" else (args.n,)
    ks = points if args.vary == "k" else (args.k,)
    result = sweep(
        distributions=(args.distribution,),
        ns=ns,
        ks=ks,
        batches=(args.batch,),
        spec=get_spec(args.gpu),
        cap=args.cap,
        seed=args.seed,
    )
    fixed = {"k": args.k} if args.vary == "n" else {"n": args.n}
    print(
        plot_sweep(
            result,
            algos=ALL_ALGORITHMS,
            distribution=args.distribution,
            batch=args.batch,
            vary=args.vary,
            fixed=fixed,
        )
    )
    return 0


def cmd_table2(args) -> int:
    ns = [1 << p for p in (11, 15, 20, 25, 30)]
    result = sweep(
        distributions=("uniform", "normal", "adversarial"),
        ns=ns,
        ks=(32, 256, 32768),
        batches=(1,),
        cap=args.cap,
        seed=args.seed,
    )
    batch100 = sweep(
        distributions=("uniform", "normal", "adversarial"),
        ns=[n for n in ns if n <= 1 << 24],
        ks=(32, 256, 32768),
        batches=(100,),
        cap=args.cap,
        seed=args.seed,
    )
    for p in batch100.points:
        result.add(p)
    rows = table2(result)
    print(
        format_table(
            ["batch", "distribution", "AIR vs Radix", "Grid vs Block", "AIR vs SOTA"],
            [
                (
                    r.batch,
                    r.distribution,
                    r.air_vs_radix.formatted(),
                    r.grid_vs_block.formatted(),
                    r.air_vs_sota.formatted(),
                )
                for r in rows
            ],
        )
    )
    return 0


def cmd_reproduce(args) -> int:
    suite = run_paper_suite(
        out_dir=args.out, cap=args.cap, full=args.full, seed=args.seed
    )
    print(suite.render())
    return 0


COMMANDS = {
    "topk": cmd_topk,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "table2": cmd_table2,
    "reproduce": cmd_reproduce,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
