"""Bitonic Top-K (Shanbhag, Pirk, Madden) — partial sorting by halving.

The input is cut into runs of ``k`` elements, each locally sorted; pairs of
sorted runs are then repeatedly reduced to the k smaller of their union
(one butterfly stage over the concatenation of one run with the reverse of
the other, then a bitonic merge to re-sort), halving the data every phase
until one run remains.  Workload per phase is half the previous one, giving
the ~2N total the paper quotes, but every comparator depends on ``log^2 k``
network stages, which is why the method's running time climbs steeply with
k in Fig. 6 and why the published implementation caps k at 256.
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from .queue_common import sentinel_for
from ..device import next_pow2, streaming_grid
from ..perf import calibration as cal
from ..primitives import (
    comparator_count_merge,
    comparator_count_sort,
    merge_select_lower_with_payload,
)


class BitonicTopK(TopKAlgorithm):
    """DrTopK-library Bitonic Top-K (k <= 256)."""

    name = "bitonic_topk"
    library = "DrTopK"
    category = "partial sorting"
    max_k = 256
    batched_execution = False  # the reference kernel handles one problem

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        batch, n = ctx.keys.shape
        device = ctx.device
        kp = next_pow2(ctx.k)  # the network works on power-of-two runs
        runs = -(-n // kp)
        padded_len = runs * kp

        sentinel = sentinel_for(ctx.keys.dtype)
        keys = np.full((batch, padded_len), sentinel, dtype=ctx.keys.dtype)
        keys[:, :n] = ctx.keys
        idx = np.full((batch, padded_len), -1, dtype=np.int64)
        idx[:, :n] = np.arange(n, dtype=np.int64)
        keys = keys.reshape(batch, runs, kp)
        idx = idx.reshape(batch, runs, kp)

        # phase 0: locally sort every run of kp elements
        order = np.argsort(keys, axis=2, kind="stable")
        keys = np.take_along_axis(keys, order, axis=2)
        idx = np.take_along_axis(idx, order, axis=2)
        comps = runs * comparator_count_sort(kp)
        for _ in range(batch):
            device.launch_kernel(
                "BitonicLocalSort",
                grid_blocks=streaming_grid(
                    device.spec, ctx.nominal_n, items_per_thread=4
                ),
                block_threads=256,
                bytes_read=4.0 * n,
                bytes_written=8.0 * n,
                flops=cal.BITONIC_OPS_PER_COMPARATOR * comps,
                fixed_dependent_cycles=cal.BITONIC_KERNEL_FIXED_CYCLES,
            )

        # merge-reduce phases: pair runs, keep the k smaller, re-sort
        phase = 0
        while keys.shape[1] > 1:
            m = keys.shape[1]
            if m % 2:
                pad_k = np.full((batch, 1, kp), sentinel, dtype=keys.dtype)
                pad_i = np.full((batch, 1, kp), -1, dtype=np.int64)
                keys = np.concatenate([keys, pad_k], axis=1)
                idx = np.concatenate([idx, pad_i], axis=1)
                m += 1
            a_k = keys[:, 0::2].reshape(-1, kp)
            a_i = idx[:, 0::2].reshape(-1, kp)
            b_k = keys[:, 1::2].reshape(-1, kp)
            b_i = idx[:, 1::2].reshape(-1, kp)
            low_k, low_i, _ = merge_select_lower_with_payload(a_k, a_i, b_k, b_i)
            order = np.argsort(low_k, axis=1, kind="stable")
            low_k = np.take_along_axis(low_k, order, axis=1)
            low_i = np.take_along_axis(low_i, order, axis=1)
            keys = low_k.reshape(batch, m // 2, kp)
            idx = low_i.reshape(batch, m // 2, kp)

            pairs = m // 2
            elems = pairs * 2 * kp
            comps = pairs * (kp + comparator_count_merge(kp))
            phase += 1
            for _ in range(batch):
                device.launch_kernel(
                    f"BitonicMergeReduce({phase})",
                    grid_blocks=streaming_grid(
                        device.spec,
                        max(1, int(elems * device.scale)),  # nominal phase size
                        items_per_thread=4,
                    ),
                    block_threads=256,
                    bytes_read=8.0 * elems,
                    bytes_written=8.0 * elems / 2,
                    flops=cal.BITONIC_OPS_PER_COMPARATOR * comps,
                    fixed_dependent_cycles=cal.BITONIC_KERNEL_FIXED_CYCLES,
                )

        return keys[:, 0, : ctx.k], idx[:, 0, : ctx.k]
