"""Full-sort baseline: CUB-style device radix sort, then take the first k.

The paper's "Sort" baseline (Table 1) is ``cub::DeviceRadixSort`` — the
straightforward but wasteful approach of Sec. 1: sort all N pairs, keep k.
The simulated cost follows CUB's onesweep structure: one global histogram
pass over the keys plus one rank-and-scatter pass per 8-bit digit, each
moving the full key+index payload.

``cub::DeviceRadixSort::SortPairs`` is a single-problem API, so a batch is
solved with one call per problem — the same serialisation the reference
benchmark exhibits at batch size 100.
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from ..device import streaming_grid
from ..perf import calibration as cal


class SortTopK(TopKAlgorithm):
    """Sort the whole list with radix sort and emit the first k pairs."""

    name = "sort"
    library = "CUB"
    category = "sorting"
    max_k = None
    batched_execution = False  # one DeviceRadixSort call per problem

    #: radix-sort digit width (CUB uses 8-bit digits for 32-bit keys)
    digit_bits = 8

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        keys = ctx.keys
        batch, n = keys.shape
        device = ctx.device
        passes = -(-(keys.dtype.itemsize * 8) // self.digit_bits)
        grid = streaming_grid(
            device.spec,
            ctx.nominal_n,
            items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
        )

        # functional result: a stable argsort is exactly what an LSD radix
        # sort of (key, index) pairs produces
        order = np.argsort(keys, axis=1, kind="stable")
        idx = order[:, : ctx.k].astype(np.int64)
        key_out = np.take_along_axis(keys, idx, axis=1)

        copy_grid = streaming_grid(
            device.spec,
            ctx.nominal_k,
            items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
        )
        device.allocate_workspace(8.0 * n)  # double buffer, reused per problem
        for _ in range(batch):
            # upfront histogram pass over all digits (onesweep)
            device.launch_kernel(
                "DeviceRadixSortHistogram",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * n,
                bytes_written=passes * 256 * 4.0,
                flops=cal.HISTOGRAM_OPS_PER_ELEM * n,
            )
            # one rank-and-scatter pass per digit, ping-ponging the pairs
            for p in range(passes):
                device.launch_kernel(
                    f"DeviceRadixSortOnesweep({p + 1})",
                    grid_blocks=grid,
                    block_threads=256,
                    bytes_read=8.0 * n,
                    bytes_written=8.0 * n,
                    flops=cal.SORT_PASS_OPS_PER_ELEM * n,
                )
            # gather the first k pairs
            device.launch_kernel(
                "CopyTopK",
                grid_blocks=copy_grid,
                block_threads=256,
                bytes_read=8.0 * ctx.k,
                bytes_written=8.0 * ctx.k,
                flops=2.0 * ctx.k,
            )
        device.free_workspace(8.0 * n)
        return key_out, idx
