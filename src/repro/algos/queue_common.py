"""Shared emulation machinery for the queue-based partial-sorting family.

WarpSelect, BlockSelect (Faiss) and GridSelect (this paper) share one
skeleton: lanes scan the input in lockstep rounds, qualified elements (those
beating the current k-th best) enter a small queue, and a full queue is
flushed — bitonic sort + merge — into the maintained top-k, which tightens
the qualification threshold.  They differ in *queue discipline*:

* ``thread`` mode — one private queue per lane; a flush fires as soon as
  **any** lane's queue fills (Faiss WarpSelect/BlockSelect, Sec. 4 ¶1).
* ``shared`` mode — one queue per warp shared by all lanes, filled with the
  two-step ballot insertion; a flush fires only when the **total** insert
  count fills the queue (GridSelect, Sec. 4).

The emulation executes lanes-in-lockstep semantics exactly, vectorised over
independent slices (thread blocks and/or batch problems), and reports the
event counts the cost model prices: rounds, inserts, flushes, comparators.

Fidelity note: the qualification threshold is refreshed once per emulated
chunk rather than at every flush inside the chunk, so the emulation counts
slightly *more* qualified inserts than lockstep hardware would (a stale,
looser threshold lets more elements through).  The bias is identical across
all three queue disciplines and shrinks as chunks adapt, so relative
comparisons — the quantity the paper reports — are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device import next_pow2
from ..obs.metrics import get_metrics, metrics_enabled
from ..primitives import comparator_count_merge, comparator_count_sort

#: sentinel key strictly above every encodable 32-bit key (see
#: repro.primitives.radix: float32 encodings top out at the canonical-NaN
#: pattern 0xFFC00000).  Wider keys use :func:`sentinel_for`.
SENTINEL = np.uint32(0xFFFFFFFF)


def sentinel_for(dtype) -> np.generic:
    """All-ones key of the given unsigned dtype — above every encoding."""
    dt = np.dtype(dtype)
    if dt.kind != "u":
        raise TypeError(f"keys must be unsigned, got {dt}")
    return dt.type(~dt.type(0))


@dataclass
class QueueStats:
    """Event counts of one queue-based run (summed over all slices)."""

    rounds: int = 0
    inserts: int = 0
    flushes: int = 0
    merge_comparators: int = 0

    def merge_cost_comparators(self, queue_capacity: int, k: int) -> int:
        """Comparators of one flush: sort the queue, merge it into the top-k."""
        q = next_pow2(max(2, queue_capacity))
        return comparator_count_sort(q) + comparator_count_merge(
            next_pow2(max(2, k + queue_capacity))
        )


@dataclass
class QueueRunResult:
    """Output of :func:`emulate_queue_select`."""

    #: maintained top-k keys per slice, shape (slices, k), sentinel-padded
    keys: np.ndarray
    #: matching local positions within each slice, -1 where sentinel
    indices: np.ndarray
    stats: QueueStats


def _thread_mode_flushes(
    mask: np.ndarray, carry: np.ndarray, queue_len: int
) -> tuple[int, np.ndarray]:
    """Exact flush count for per-thread queues over one chunk of rounds.

    ``mask`` is (rounds, lanes): which lane inserted in which round.
    ``carry`` is the per-lane queue fill entering the chunk.  A flush clears
    every lane's queue (the warp sorts and merges all queues together).
    Returns the flush count and the per-lane fill leaving the chunk.
    """
    rounds, lanes = mask.shape
    if rounds == 0:
        return 0, carry
    cum = np.cumsum(mask, axis=0, dtype=np.int64)
    flushes = 0
    start = 0
    offset = carry.astype(np.int64)
    while start < rounds:
        base = cum[start - 1] if start > 0 else np.zeros(lanes, dtype=np.int64)
        counts_max = (cum[start:] - base + offset).max(axis=1)
        hit = int(np.searchsorted(counts_max, queue_len, side="left"))
        if hit >= counts_max.shape[0]:
            return flushes, (cum[-1] - base + offset)
        flushes += 1
        start = start + hit + 1
        offset = np.zeros(lanes, dtype=np.int64)
    return flushes, offset


def _merge_into_maintained(
    m_keys: np.ndarray,
    m_idx: np.ndarray,
    cand_keys: np.ndarray,
    cand_idx: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge padded candidates into the maintained per-slice top-k arrays."""
    k = m_keys.shape[1]
    all_keys = np.concatenate([m_keys, cand_keys], axis=1)
    all_idx = np.concatenate([m_idx, cand_idx], axis=1)
    # key-primary, validity-secondary: a real element whose key happens to
    # equal the all-ones sentinel (e.g. uint32 value 0xFFFFFFFF selected
    # smallest, or value 0 selected largest) must beat padding slots, which
    # carry the same key but index -1
    order = np.lexsort((all_idx < 0, all_keys))[:, :k]
    return (
        np.take_along_axis(all_keys, order, axis=1),
        np.take_along_axis(all_idx, order, axis=1),
    )


def emulate_queue_select(
    slices: np.ndarray,
    k: int,
    *,
    lanes: int,
    mode: str,
    queue_len: int,
    valid_lengths: np.ndarray | None = None,
) -> QueueRunResult:
    """Run the queue-select skeleton over independent slices.

    ``slices`` is (num_slices, slice_len) of ``uint32`` keys (sentinel-padded
    if slice lengths differ).  ``lanes`` is the number of lockstep lanes per
    slice (32 for one warp, 128 for a 4-warp block).  ``queue_len`` is the
    per-lane queue length in ``thread`` mode, the shared-queue capacity in
    ``shared`` mode.

    ``valid_lengths`` (per-slice count of leading real elements, defaulting
    to the full slice) lets sentinel-padded slices distinguish padding from
    a *real* element whose key equals the sentinel — integer dtypes can
    produce the all-ones key (uint32 0xFFFFFFFF smallest, 0 largest), and
    such an element must still be admitted while the maintained top-k has
    unfilled slots.
    """
    if mode not in ("thread", "shared"):
        raise ValueError(f"mode must be 'thread' or 'shared', got {mode!r}")
    if slices.ndim != 2:
        raise ValueError(f"expected (slices, len) keys, got shape {slices.shape}")
    if lanes <= 0 or queue_len <= 0:
        raise ValueError("lanes and queue_len must be positive")
    num_slices, length = slices.shape
    if valid_lengths is None:
        valid_lengths = np.full(num_slices, length, dtype=np.int64)
    else:
        valid_lengths = np.asarray(valid_lengths, dtype=np.int64)
        if valid_lengths.shape != (num_slices,):
            raise ValueError(
                f"valid_lengths must have shape ({num_slices},), "
                f"got {valid_lengths.shape}"
            )
    sentinel = sentinel_for(slices.dtype)
    stats = QueueStats()
    stats.rounds = -(-length // lanes) * num_slices

    m_keys = np.full((num_slices, k), sentinel, dtype=slices.dtype)
    m_idx = np.full((num_slices, k), -1, dtype=np.int64)
    if mode == "shared":
        shared_fill = np.zeros(num_slices, dtype=np.int64)
    else:
        thread_fill = np.zeros((num_slices, lanes), dtype=np.int64)

    flush_cost = stats.merge_cost_comparators(
        queue_len * (lanes if mode == "thread" else 1), k
    )

    pos = 0
    chunk = lanes * 8
    max_chunk = max(lanes * 8, 1 << 14)
    while pos < length:
        c = min(chunk, length - pos)
        block = slices[:, pos : pos + c]
        threshold = m_keys[:, -1][:, None]
        mask = block < threshold
        # sentinel-keyed *real* elements tie with the initial threshold and
        # would never qualify under `<`; admit them while the maintained
        # top-k still holds padding (index -1 — padding sorts last, so the
        # final slot tells).  Refreshed per chunk, like the threshold.
        has_pad = m_idx[:, -1] < 0
        if has_pad.any():
            is_real = (
                np.arange(pos, pos + c, dtype=np.int64)[None, :]
                < valid_lengths[:, None]
            )
            mask |= has_pad[:, None] & is_real & (block == threshold)
        per_slice_q = mask.sum(axis=1)
        stats.inserts += int(per_slice_q.sum())

        # --- flush counting (the discipline difference) -------------------
        if mode == "shared":
            total = shared_fill + per_slice_q
            stats.flushes += int((total // queue_len).sum())
            shared_fill = total % queue_len
        else:
            rounds_c = -(-c // lanes)
            padded = np.zeros((num_slices, rounds_c * lanes), dtype=bool)
            padded[:, :c] = mask
            per_round = padded.reshape(num_slices, rounds_c, lanes)
            # tier 0 — no flush possible: cumulative lane counts are
            # monotone, so if no lane's final fill reaches queue_len, no
            # prefix does either; the whole chunk is plain accumulation.
            # This is the common case once the threshold tightens, and it
            # covers every slice in one vectorised step.
            lane_counts = per_round.sum(axis=1, dtype=np.int64)
            no_flush = (thread_fill + lane_counts).max(axis=1) < queue_len
            thread_fill[no_flush] += lane_counts[no_flush]
            # tier 1 — dense phase: every lane inserts every round and the
            # fills are uniform, so flush arithmetic is closed-form
            dense = (
                ~no_flush
                & per_round.all(axis=(1, 2))
                & (thread_fill == thread_fill[:, :1]).all(axis=1)
            )
            if dense.any():
                total_d = thread_fill[dense, 0] + rounds_c
                stats.flushes += int((total_d // queue_len).sum())
                thread_fill[dense] = (total_d % queue_len)[:, None]
            # tier 2 — exact per-slice replay for the irregular remainder
            for s in np.flatnonzero(~no_flush & ~dense):
                f, thread_fill[s] = _thread_mode_flushes(
                    per_round[s], thread_fill[s], queue_len
                )
                stats.flushes += f

        # --- merge qualified candidates into the maintained top-k ---------
        maxc = int(per_slice_q.max()) if num_slices else 0
        if maxc:
            cand_keys = np.full((num_slices, maxc), sentinel, dtype=slices.dtype)
            cand_idx = np.full((num_slices, maxc), -1, dtype=np.int64)
            rows, cols = np.nonzero(mask)
            rank = np.cumsum(mask, axis=1)[rows, cols] - 1
            cand_keys[rows, rank] = block[rows, cols]
            cand_idx[rows, rank] = pos + cols
            m_keys, m_idx = _merge_into_maintained(m_keys, m_idx, cand_keys, cand_idx)

        pos += c
        # adapt: once the threshold is tight, qualified elements are rare and
        # larger chunks amortise the Python overhead without extra flushes
        if maxc <= max(4, queue_len // 4):
            chunk = min(chunk * 2, max_chunk)

    stats.merge_comparators = stats.flushes * flush_cost
    if metrics_enabled():
        registry = get_metrics()
        registry.counter("queue.rounds", mode=mode).inc(stats.rounds)
        registry.counter("queue.inserts", mode=mode).inc(stats.inserts)
        registry.counter("queue.flushes", mode=mode).inc(stats.flushes)
    return QueueRunResult(keys=m_keys, indices=m_idx, stats=stats)


def slice_rows(
    row_keys: np.ndarray, num_slices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split each row into ``num_slices`` contiguous sentinel-padded slices.

    Returns ``(slices, offsets)`` where ``slices`` is
    (batch * num_slices, ceil(n / num_slices)) and ``offsets`` gives each
    slice's starting position in its original row.
    """
    if row_keys.ndim != 2:
        raise ValueError(f"expected (batch, n) keys, got {row_keys.shape}")
    batch, n = row_keys.shape
    if num_slices <= 0:
        raise ValueError(f"num_slices must be positive, got {num_slices}")
    per = -(-n // num_slices)
    padded = np.full(
        (batch, num_slices * per), sentinel_for(row_keys.dtype), dtype=row_keys.dtype
    )
    padded[:, :n] = row_keys
    slices = padded.reshape(batch * num_slices, per)
    offsets = np.tile(np.arange(num_slices, dtype=np.int64) * per, batch)
    return slices, offsets
