"""Host-coordinated RadixSelect — the baseline AIR Top-K improves on.

This models the DrTopK-library RadixSelect the paper benchmarks (Table 1):
MSD radix selection with 8-bit digits where, after every device-side
histogram, the host copies the histogram down over PCIe, scans it, finds the
target digit and launches the filtering kernel with the result.  That
per-iteration host round trip — PCIe copies, CPU processing, stream
synchronisation — is precisely the overhead shown as white space in the
paper's Fig. 8 timeline and removed by AIR's iteration-fused design.

Each problem in a batch is solved serially, as the reference single-problem
implementation does; this is the source of AIR's up-to-574x batch-100
speedup (Table 2).
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from ..device import streaming_grid
from ..perf import calibration as cal
from ..primitives import (
    digit_histogram,
    digit_layout,
    find_target_bucket,
    inclusive_scan,
    partition_three_way,
)


class RadixSelect(TopKAlgorithm):
    """DrTopK-style host-coordinated radix top-k (8-bit digits)."""

    name = "radix_select"
    library = "DrTopK"
    category = "partition-based"
    max_k = None
    batched_execution = False  # reference code solves one problem at a time

    digit_bits = 8

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        batch, n = ctx.keys.shape
        out_keys = np.empty((batch, ctx.k), dtype=ctx.keys.dtype)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            rk, ri = self._select_row(ctx, ctx.keys[row])
            out_keys[row] = rk
            out_idx[row] = ri
        return out_keys, out_idx

    def _select_row(
        self, ctx: RunContext, row_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        scale = device.scale
        n = row_keys.shape[0]
        cand_keys = row_keys
        cand_idx = np.arange(n, dtype=np.int64)
        k_rem = ctx.k
        won_keys: list[np.ndarray] = []
        won_idx: list[np.ndarray] = []

        # per-problem workspace allocation (cudaMalloc/cudaFree pair)
        device.host_compute("cudaMalloc", cal.HOST_ALLOC_SECONDS)
        # the reference code materialises the index array up front and
        # carries (value, index) pairs through every iteration
        device.launch_kernel(
            "IndexInit",
            grid_blocks=streaming_grid(
                device.spec,
                max(1, int(n * scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            ),
            block_threads=256,
            bytes_written=4.0 * n,
            flops=1.0 * n,
        )
        device.allocate_workspace(4.0 * n)

        key_width = row_keys.dtype.itemsize * 8
        for dpass in digit_layout(key_width, self.digit_bits):
            count = cand_keys.shape[0]
            if k_rem == 0:
                break
            # histograms only touch the values; the filter moves the pairs
            elem_bytes = 8.0
            grid = streaming_grid(
                device.spec,
                max(1, int(count * scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            digits = dpass.extract(cand_keys)
            hist = digit_histogram(digits, dpass.num_buckets)

            device.launch_kernel(
                "CalculateOccurrence",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * count,
                bytes_written=dpass.num_buckets * 4.0,
                flops=cal.HISTOGRAM_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_hist")
            device.memcpy_d2h("MemcpyDtoH(hist)", dpass.num_buckets * 4.0)
            # host scans the histogram and finds the target digit
            device.host_compute("host_scan", cal.HOST_RADIX_ITER_SECONDS)
            psum = inclusive_scan(hist)
            target = int(find_target_bucket(psum, k_rem))
            device.memcpy_h2d("MemcpyHtoD(params)", 64.0)

            winners, survivors = partition_three_way(
                cand_keys, cand_idx, digits, target
            )
            if winners.count == 0 and survivors.count == count:
                # the target bucket holds everything: filtering would copy
                # the list onto itself, so the reference code skips it
                continue
            device.launch_kernel(
                "Filter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=elem_bytes * count,
                bytes_written=cal.SCATTER_WRITE_PENALTY
                * (winners.bytes_written + survivors.bytes_written),
                flops=cal.FILTER_OPS_PER_ELEM * count,
            )
            device.allocate_workspace(8.0 * survivors.count)
            device.synchronize("sync_filter")

            won_keys.append(winners.keys)
            won_idx.append(winners.indices)
            k_rem -= winners.count
            cand_keys = survivors.keys
            cand_idx = survivors.indices

        if k_rem > 0:
            # remaining candidates share every examined digit: any k_rem do
            won_keys.append(cand_keys[:k_rem])
            won_idx.append(cand_idx[:k_rem])
            device.launch_kernel(
                "LastGather",
                grid_blocks=max(
                    1,
                    streaming_grid(device.spec, max(1, int(k_rem * scale))),
                ),
                block_threads=256,
                bytes_read=8.0 * k_rem,
                bytes_written=8.0 * k_rem,
                flops=2.0 * k_rem,
            )
            device.synchronize("sync_final")
        keys = (
            np.concatenate(won_keys)
            if won_keys
            else np.empty(0, row_keys.dtype)
        )
        idx = np.concatenate(won_idx) if won_idx else np.empty(0, np.int64)
        return keys[: ctx.k], idx[: ctx.k]
