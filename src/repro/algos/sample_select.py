"""SampleSelect — splitter-based partitioning (Ribizel & Anzt).

Each iteration sorts a small random sample of the candidates on the device,
picks evenly spaced splitters from it, assigns every candidate to a bucket
by binary-searching the splitters, and recurses into the bucket containing
the k-th element.  Sampling buys well-balanced buckets at the price of the
extra sample-sort kernel and the per-element binary search (Sec. 2.2).
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from ..device import next_pow2, streaming_grid
from ..perf import calibration as cal
from ..primitives import (
    comparator_count_sort,
    digit_histogram,
    find_target_bucket,
    inclusive_scan,
    partition_three_way,
)


class SampleSelect(TopKAlgorithm):
    """GpuSelection-style SampleSelect with 256 sampled splitters."""

    name = "sample_select"
    library = "GpuSelection"
    category = "partition-based"
    max_k = None
    batched_execution = False

    sample_size = 1024
    num_buckets = 256
    terminal_size = 1024
    max_iterations = 64

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        batch, n = ctx.keys.shape
        out_keys = np.empty((batch, ctx.k), dtype=np.uint32)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            # fresh identically-seeded splitter stream per row: the batched
            # run replays each row exactly as a single-shot run would
            ctx.rng = np.random.default_rng(ctx.seed)
            rk, ri = self._select_row(ctx, ctx.keys[row])
            out_keys[row] = rk
            out_idx[row] = ri
        return out_keys, out_idx

    def _splitters(self, ctx: RunContext, cand: np.ndarray) -> np.ndarray:
        """Evenly spaced splitters from a sorted random sample."""
        s = min(self.sample_size, cand.shape[0])
        sample = np.sort(cand[ctx.rng.integers(0, cand.shape[0], size=s)])
        # num_buckets - 1 interior splitters
        picks = np.linspace(0, s - 1, self.num_buckets + 1)[1:-1]
        return sample[picks.astype(np.int64)]

    def _select_row(
        self, ctx: RunContext, row_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        cand_keys = row_keys
        cand_idx = np.arange(row_keys.shape[0], dtype=np.int64)
        k_rem = ctx.k
        won_keys: list[np.ndarray] = []
        won_idx: list[np.ndarray] = []

        for _ in range(self.max_iterations):
            count = cand_keys.shape[0]
            if k_rem == 0 or count <= max(self.terminal_size, k_rem):
                break
            grid = streaming_grid(
                device.spec,
                max(1, int(count * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            splitters = self._splitters(ctx, cand_keys)
            s = min(self.sample_size, count)
            device.launch_kernel(
                "SampleGatherSort",
                grid_blocks=1,
                block_threads=256,
                bytes_read=4.0 * s,
                bytes_written=4.0 * (self.num_buckets - 1),
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, s))),
                scalable=False,  # the sample size is fixed, not O(N)
            )
            buckets = np.searchsorted(splitters, cand_keys, side="right").astype(
                np.uint32
            )
            hist = digit_histogram(buckets, self.num_buckets)
            device.launch_kernel(
                "SplitterHistogram",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * count,
                bytes_written=self.num_buckets * 4.0,
                flops=cal.SPLITTER_SEARCH_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_hist")
            device.memcpy_d2h("MemcpyDtoH(hist)", self.num_buckets * 4.0)
            device.host_compute("host_scan", cal.HOST_SCAN_SECONDS)
            # bucket offsets are scanned on the device before scattering
            device.launch_kernel(
                "ScanBucketOffsets",
                grid_blocks=1,
                block_threads=256,
                bytes_read=self.num_buckets * 4.0,
                bytes_written=self.num_buckets * 4.0,
                flops=float(self.num_buckets * 8),
                scalable=False,
            )
            device.synchronize("sync_scan")
            psum = inclusive_scan(hist)
            target = int(find_target_bucket(psum, k_rem))

            winners, survivors = partition_three_way(
                cand_keys, cand_idx, buckets, target
            )
            device.launch_kernel(
                "SampleFilter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * count,
                # the reference implementation scatters the whole candidate
                # array into grouped buckets, not only the surviving one
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * count,
                flops=cal.FILTER_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_filter")
            won_keys.append(winners.keys)
            won_idx.append(winners.indices)
            k_rem -= winners.count
            prev = count
            cand_keys = survivors.keys
            cand_idx = survivors.indices
            if cand_keys.shape[0] == prev:
                break  # all candidates identical: splitters cannot split them

        if k_rem > 0:
            count = cand_keys.shape[0]
            order = np.argsort(cand_keys, kind="stable")[:k_rem]
            won_keys.append(cand_keys[order])
            won_idx.append(cand_idx[order])
            device.launch_kernel(
                "SampleTerminalSort",
                grid_blocks=1,
                block_threads=256,
                bytes_read=8.0 * count,
                bytes_written=8.0 * k_rem,
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, count))),
            )
            device.synchronize("sync_final")
        keys = np.concatenate(won_keys)
        idx = np.concatenate(won_idx)
        return keys[: ctx.k], idx[: ctx.k]
