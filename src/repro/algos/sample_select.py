"""SampleSelect — splitter-based partitioning (Ribizel & Anzt).

Each iteration sorts a small random sample of the candidates on the device,
picks evenly spaced splitters from it, assigns every candidate to a bucket
by binary-searching the splitters, and recurses into the bucket containing
the k-th element.  Sampling buys well-balanced buckets at the price of the
extra sample-sort kernel and the per-element binary search (Sec. 2.2).

Batched execution is *fused* by default: every iteration runs one launch
set (SampleGatherSort, SplitterHistogram, ScanBucketOffsets, SampleFilter)
over the flat concatenation of all still-active rows' candidates, pays one
synchronisation and one (batch-sized) PCIe round trip per step instead of
one per row, and a single terminal sort covers every row that drops to the
terminal regime.  Splitters stay per-row: each row owns an
identically-seeded generator whose draw sequence matches the per-row
reference loop exactly, so the fused run replays every row byte-identically
to a single-shot run.  ``fused=False`` keeps the per-row reference loop
(the original host-serialised GpuSelection shape); at ``batch=1`` the two
are identical in both results and accounting.
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from ..device import next_pow2, streaming_grid
from ..perf import calibration as cal
from ..primitives import (
    batched_digit_histogram,
    comparator_count_sort,
    digit_histogram,
    find_target_bucket,
    flat_histogram,
    head_mask,
    inclusive_scan,
    partition_three_way,
    segment_offsets,
)


class SampleSelect(TopKAlgorithm):
    """GpuSelection-style SampleSelect with 256 sampled splitters."""

    name = "sample_select"
    library = "GpuSelection"
    category = "partition-based"
    max_k = None
    batched_execution = True  # fused batched scheduling (see module docstring)

    sample_size = 1024
    num_buckets = 256
    terminal_size = 1024
    max_iterations = 64

    def __init__(self, *, fused: bool = True) -> None:
        """``fused=False`` restores the per-row reference loop, whose
        launches, synchronisations and PCIe round trips replay once per
        row; the capability flag follows the execution mode."""
        self.fused = fused
        self.batched_execution = bool(fused)

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        if self.fused:
            return self._run_fused(ctx)
        batch, n = ctx.keys.shape
        out_keys = np.empty((batch, ctx.k), dtype=np.uint32)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            # fresh identically-seeded splitter stream per row: the batched
            # run replays each row exactly as a single-shot run would
            ctx.rng = np.random.default_rng(ctx.seed)
            rk, ri = self._select_row(ctx, ctx.keys[row])
            out_keys[row] = rk
            out_idx[row] = ri
        return out_keys, out_idx

    def _splitters(self, ctx: RunContext, cand: np.ndarray) -> np.ndarray:
        """Evenly spaced splitters from a sorted random sample."""
        s = min(self.sample_size, cand.shape[0])
        sample = np.sort(cand[ctx.rng.integers(0, cand.shape[0], size=s)])
        # num_buckets - 1 interior splitters
        picks = np.linspace(0, s - 1, self.num_buckets + 1)[1:-1]
        return sample[picks.astype(np.int64)]

    def _row_splitters(
        self, rng: np.random.Generator, cand: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Per-row splitters for the fused path, consuming ``rng`` exactly
        as :meth:`_splitters` consumes the per-row reference stream."""
        s = min(self.sample_size, cand.shape[0])
        sample = np.sort(cand[rng.integers(0, cand.shape[0], size=s)])
        picks = np.linspace(0, s - 1, self.num_buckets + 1)[1:-1]
        return sample[picks.astype(np.int64)], s

    # ------------------------------------------------------------------ #
    # fused batched execution: one launch set per iteration, all rows
    # ------------------------------------------------------------------ #
    def _run_fused(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        batch, n = ctx.keys.shape
        nb = self.num_buckets
        keys2d = ctx.keys

        # ---- terminal fast path: the whole batch is already below the
        # terminal threshold, so one fused sort finishes every row
        if n <= max(self.terminal_size, ctx.k):
            order = np.argsort(keys2d, axis=1, kind="stable")[:, : ctx.k]
            device.launch_kernel(
                "SampleTerminalSort",
                grid_blocks=batch,
                block_threads=256,
                bytes_read=8.0 * batch * n,
                bytes_written=8.0 * batch * ctx.k,
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, n)))
                * batch,
            )
            device.synchronize("sync_final")
            return np.take_along_axis(keys2d, order, axis=1), order.astype(
                np.int64
            )

        k_rem = np.full(batch, ctx.k, dtype=np.int64)
        count = np.full(batch, n, dtype=np.int64)
        active = np.ones(batch, dtype=bool)
        # one identically-seeded splitter stream per row, consumed exactly
        # as the per-row reference loop consumes it
        rngs = [np.random.default_rng(ctx.seed) for _ in range(batch)]

        # flat row-major candidate state with per-row counts; built lazily
        # after the rectangular iteration 0 (see below)
        cand_rows = np.empty(0, dtype=np.int64)
        cand_keys = np.empty(0, dtype=keys2d.dtype)
        cand_idx = np.empty(0, dtype=np.int64)

        # output chunks, chronological; stable-sorted by row at the end
        out_rows: list[np.ndarray] = []
        out_keys: list[np.ndarray] = []
        out_idx: list[np.ndarray] = []
        # rows that fell to the terminal regime, with their candidates
        term_rows: list[np.ndarray] = []
        term_keys: list[np.ndarray] = []
        term_idx: list[np.ndarray] = []
        term_k: np.ndarray = np.zeros(batch, dtype=np.int64)

        def charge_iteration(
            total: int,
            nrows: int,
            sample_bytes: float,
            sample_comparators: float,
        ) -> None:
            """Device accounting of one fused iteration: sample sort (one
            block per row), splitter histogram, one (batch-sized) PCIe
            round trip, offset scan and the filtering scatter."""
            grid = streaming_grid(
                device.spec,
                max(1, int(total * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            device.launch_kernel(
                "SampleGatherSort",
                grid_blocks=nrows,
                block_threads=256,
                bytes_read=sample_bytes,
                bytes_written=4.0 * (nb - 1) * nrows,
                flops=cal.OPS_PER_COMPARATOR * sample_comparators,
                scalable=False,  # the sample size is fixed, not O(N)
            )
            device.launch_kernel(
                "SplitterHistogram",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * total,
                bytes_written=nrows * nb * 4.0,
                flops=cal.SPLITTER_SEARCH_OPS_PER_ELEM * total,
            )
            device.synchronize("sync_hist")
            device.memcpy_d2h("MemcpyDtoH(hist)", nrows * nb * 4.0)
            device.host_compute("host_scan", cal.HOST_SCAN_SECONDS * nrows)
            # bucket offsets are scanned on the device before scattering —
            # one block per active row
            device.launch_kernel(
                "ScanBucketOffsets",
                grid_blocks=nrows,
                block_threads=256,
                bytes_read=nrows * nb * 4.0,
                bytes_written=nrows * nb * 4.0,
                flops=float(nrows * nb * 8),
                scalable=False,
            )
            device.synchronize("sync_scan")

        def charge_filter(total: int) -> None:
            grid = streaming_grid(
                device.spec,
                max(1, int(total * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            device.launch_kernel(
                "SampleFilter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * total,
                # the reference implementation scatters the whole candidate
                # array into grouped buckets, not only the surviving one
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * total,
                flops=cal.FILTER_OPS_PER_ELEM * total,
            )
            device.synchronize("sync_filter")

        # ---- iteration 0 on the rectangle: every row is active with the
        # same candidate count, so the bucket masks stay 2-d and the flat
        # state (with its repeat/gather overhead) is built only for the
        # ~1/256 of candidates that survive the first filter
        spl0 = np.empty((batch, nb - 1), dtype=keys2d.dtype)
        sample_bytes = 0.0
        sample_comparators = 0.0
        for r in range(batch):
            spl0[r], s = self._row_splitters(rngs[r], keys2d[r])
            sample_bytes += 4.0 * s
            sample_comparators += comparator_count_sort(next_pow2(max(2, s)))
        buckets2 = np.empty((batch, n), dtype=np.int64)
        for r in range(batch):
            buckets2[r] = np.searchsorted(spl0[r], keys2d[r], side="right")
        hist = batched_digit_histogram(buckets2, nb)
        charge_iteration(batch * n, batch, sample_bytes, sample_comparators)
        psum = inclusive_scan(hist, axis=1)
        target = np.asarray(find_target_bucket(psum, k_rem), dtype=np.int64)
        win2 = buckets2 < target[:, None]
        keep2 = buckets2 == target[:, None]
        charge_filter(batch * n)
        in_target = np.take_along_axis(hist, target[:, None], axis=1)[:, 0]
        below = (
            np.take_along_axis(psum, target[:, None], axis=1)[:, 0] - in_target
        )
        if below.any():
            wr, wc = np.nonzero(win2)
            out_rows.append(wr.astype(np.int64))
            out_keys.append(keys2d[win2])
            out_idx.append(wc.astype(np.int64))
            k_rem -= below
        kr_, kc_ = np.nonzero(keep2)
        cand_rows = kr_.astype(np.int64)
        cand_keys = keys2d[keep2]
        cand_idx = kc_.astype(np.int64)
        stuck0 = in_target == count
        count[:] = in_target

        def retire(rows_mask: np.ndarray) -> None:
            """Move ``rows_mask`` rows out of the iteration; rows with
            results still owed go to the shared terminal sort."""
            nonlocal cand_rows, cand_keys, cand_idx
            owed = rows_mask & (k_rem > 0)
            if owed.any():
                sel = owed[cand_rows]
                term_rows.append(cand_rows[sel])
                term_keys.append(cand_keys[sel])
                term_idx.append(cand_idx[sel])
                term_k[owed] = k_rem[owed]
            keep = ~rows_mask[cand_rows]
            cand_rows, cand_keys, cand_idx = (
                cand_rows[keep],
                cand_keys[keep],
                cand_idx[keep],
            )
            active[rows_mask] = False

        # all candidates identical: splitters cannot split them — the
        # per-row loop breaks to its terminal sort here
        if stuck0.any():
            retire(stuck0.copy())

        # ---- iterations 1+: the surviving candidates are ragged across
        # rows, so the state is flat (row-major) with per-row counts
        for _ in range(1, self.max_iterations):
            # rows small enough (or finished) leave the device loop
            settled = active & (
                (k_rem == 0) | (count <= np.maximum(self.terminal_size, k_rem))
            )
            if settled.any():
                retire(settled)
            rows = np.flatnonzero(active)
            if not rows.size:
                break
            seg_counts = count[rows]
            total = int(seg_counts.sum())
            # per-row splitters, each drawn from its row's own stream; one
            # fused sample-sort launch (one block per row) covers the batch
            offsets = segment_offsets(seg_counts)
            spl = np.empty((rows.size, nb - 1), dtype=cand_keys.dtype)
            sample_bytes = 0.0
            sample_comparators = 0.0
            for i, r in enumerate(rows):
                seg = cand_keys[offsets[i] : offsets[i + 1]]
                spl[i], s = self._row_splitters(rngs[r], seg)
                sample_bytes += 4.0 * s
                sample_comparators += comparator_count_sort(
                    next_pow2(max(2, s))
                )
            # per-element splitter search over the flat batch in one pass:
            # prefixing each key/splitter with its local row id keeps every
            # row's searchsorted window disjoint.  The flat state is
            # grouped by ascending row, so each element's local row index
            # is a plain repeat of the counts
            local = np.repeat(np.arange(rows.size, dtype=np.int64), seg_counts)
            flat_spl = (
                (np.arange(rows.size, dtype=np.uint64)[:, None] << np.uint64(32))
                | spl.astype(np.uint64)
            ).ravel()
            combined = (local.astype(np.uint64) << np.uint64(32)) | cand_keys.astype(
                np.uint64
            )
            buckets = (
                np.searchsorted(flat_spl, combined, side="right")
                - local * (nb - 1)
            ).astype(np.int64)
            hist = flat_histogram(local, buckets, rows.size, nb)
            charge_iteration(total, rows.size, sample_bytes, sample_comparators)
            psum = inclusive_scan(hist, axis=1)
            target = np.asarray(
                find_target_bucket(psum, k_rem[rows]), dtype=np.int64
            )

            target_elem = target[local]
            win = buckets < target_elem
            keep = buckets == target_elem
            charge_filter(total)
            if win.any():
                out_rows.append(cand_rows[win])
                out_keys.append(cand_keys[win])
                out_idx.append(cand_idx[win])
                k_rem[rows] -= np.bincount(local[win], minlength=rows.size)
            cand_rows, cand_keys, cand_idx = (
                cand_rows[keep],
                cand_keys[keep],
                cand_idx[keep],
            )
            new_count = np.take_along_axis(hist, target[:, None], axis=1)[:, 0]
            # all candidates identical: splitters cannot split them — the
            # per-row loop breaks to its terminal sort here
            stuck = new_count == seg_counts
            count[rows] = new_count
            if stuck.any():
                stuck_rows = np.zeros(batch, dtype=bool)
                stuck_rows[rows[stuck]] = True
                retire(stuck_rows)
        else:  # iteration cap: remaining rows owe results to the terminal
            retire(active.copy())

        # one shared terminal sort covers every row that still owes results
        if term_rows:
            t_rows = np.concatenate(term_rows)
            t_keys = np.concatenate(term_keys)
            t_idx = np.concatenate(term_idx)
            # stable (row, key) order == per-row stable argsort by key
            order = np.lexsort((t_keys, t_rows))
            t_rows, t_keys, t_idx = t_rows[order], t_keys[order], t_idx[order]
            seg = np.bincount(t_rows, minlength=batch)
            mask = head_mask(seg, term_k)
            out_rows.append(t_rows[mask])
            out_keys.append(t_keys[mask])
            out_idx.append(t_idx[mask])
            counts_sorted = seg[seg > 0]
            comparators = sum(
                comparator_count_sort(next_pow2(max(2, int(c))))
                for c in counts_sorted
            )
            device.launch_kernel(
                "SampleTerminalSort",
                grid_blocks=int(counts_sorted.size),
                block_threads=256,
                bytes_read=8.0 * float(counts_sorted.sum()),
                bytes_written=8.0 * float(term_k.sum()),
                flops=cal.OPS_PER_COMPARATOR * comparators,
            )
            device.synchronize("sync_final")

        all_rows = np.concatenate(out_rows)
        totals = np.bincount(all_rows, minlength=batch)
        if not (totals == ctx.k).all():
            bad = int(np.flatnonzero(totals != ctx.k)[0])
            raise AssertionError(
                f"SampleSelect produced {int(totals[bad])} results for row "
                f"{bad}, expected {ctx.k}"
            )
        order = np.argsort(all_rows, kind="stable")
        return (
            np.concatenate(out_keys)[order].reshape(batch, ctx.k),
            np.concatenate(out_idx)[order].reshape(batch, ctx.k),
        )

    # ------------------------------------------------------------------ #
    # per-row reference loop (the pre-fusion execution)
    # ------------------------------------------------------------------ #
    def _select_row(
        self, ctx: RunContext, row_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        cand_keys = row_keys
        cand_idx = np.arange(row_keys.shape[0], dtype=np.int64)
        k_rem = ctx.k
        won_keys: list[np.ndarray] = []
        won_idx: list[np.ndarray] = []

        for _ in range(self.max_iterations):
            count = cand_keys.shape[0]
            if k_rem == 0 or count <= max(self.terminal_size, k_rem):
                break
            grid = streaming_grid(
                device.spec,
                max(1, int(count * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            splitters = self._splitters(ctx, cand_keys)
            s = min(self.sample_size, count)
            device.launch_kernel(
                "SampleGatherSort",
                grid_blocks=1,
                block_threads=256,
                bytes_read=4.0 * s,
                bytes_written=4.0 * (self.num_buckets - 1),
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, s))),
                scalable=False,  # the sample size is fixed, not O(N)
            )
            buckets = np.searchsorted(splitters, cand_keys, side="right").astype(
                np.uint32
            )
            hist = digit_histogram(buckets, self.num_buckets)
            device.launch_kernel(
                "SplitterHistogram",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * count,
                bytes_written=self.num_buckets * 4.0,
                flops=cal.SPLITTER_SEARCH_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_hist")
            device.memcpy_d2h("MemcpyDtoH(hist)", self.num_buckets * 4.0)
            device.host_compute("host_scan", cal.HOST_SCAN_SECONDS)
            # bucket offsets are scanned on the device before scattering
            device.launch_kernel(
                "ScanBucketOffsets",
                grid_blocks=1,
                block_threads=256,
                bytes_read=self.num_buckets * 4.0,
                bytes_written=self.num_buckets * 4.0,
                flops=float(self.num_buckets * 8),
                scalable=False,
            )
            device.synchronize("sync_scan")
            psum = inclusive_scan(hist)
            target = int(find_target_bucket(psum, k_rem))

            winners, survivors = partition_three_way(
                cand_keys, cand_idx, buckets, target
            )
            device.launch_kernel(
                "SampleFilter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * count,
                # the reference implementation scatters the whole candidate
                # array into grouped buckets, not only the surviving one
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * count,
                flops=cal.FILTER_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_filter")
            won_keys.append(winners.keys)
            won_idx.append(winners.indices)
            k_rem -= winners.count
            prev = count
            cand_keys = survivors.keys
            cand_idx = survivors.indices
            if cand_keys.shape[0] == prev:
                break  # all candidates identical: splitters cannot split them

        if k_rem > 0:
            count = cand_keys.shape[0]
            order = np.argsort(cand_keys, kind="stable")[:k_rem]
            won_keys.append(cand_keys[order])
            won_idx.append(cand_idx[order])
            device.launch_kernel(
                "SampleTerminalSort",
                grid_blocks=1,
                block_threads=256,
                bytes_read=8.0 * count,
                bytes_written=8.0 * k_rem,
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, count))),
            )
            device.synchronize("sync_final")
        keys = np.concatenate(won_keys)
        idx = np.concatenate(won_idx)
        return keys[: ctx.k], idx[: ctx.k]
