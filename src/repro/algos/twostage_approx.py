"""Generalized two-stage approximate top-k (Samaga et al., "A Faster
Generalized Two-Stage Approximate Top-K").

Stage 1 takes the exact top-``k''`` of each of ``p`` partitions
(generalizing the classic two-stage scheme beyond ``k'' = 1``); stage 2
runs an exact top-k over the ``p * k''`` survivors.  Keeping more than
one element per partition is what buys recall: a top-k element is lost
only when ``k''`` *better* top-k elements share its partition, which is
quadratically (and beyond) less likely than a single collision.  The
default ``p = 4k, k'' = 2`` (8x survivor oversampling) sits at ~0.99
expected recall — the high-fidelity end of the approximate Pareto
front, paying a slightly larger stage-2 merge than ``bucket_approx``
for measurably fewer misses.
"""

from __future__ import annotations

from ..approx import plan_twostage
from .approx_base import PartitionApproxTopK

#: default partition-to-k ratio
DEFAULT_PARTITION_RATIO = 4
#: default per-partition quota (the k'' > 1 generalization)
DEFAULT_STAGE_K = 2


class TwoStageApproxTopK(PartitionApproxTopK):
    """Approximate top-k via per-partition top-``k''`` + exact reduce."""

    name = "twostage_approx"
    library = "approx-top-k (Samaga et al.)"
    kernel_stage1 = "TwoStagePartialTopK"
    kernel_stage2 = "TwoStageReduce"

    def __init__(
        self,
        *,
        partitions: int | None = None,
        stage_k: int | None = DEFAULT_STAGE_K,
        fused: bool = True,
    ) -> None:
        super().__init__(fused=fused)
        if partitions is not None and int(partitions) < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        if stage_k is not None and int(stage_k) < 1:
            raise ValueError(f"stage_k must be >= 1, got {stage_k}")
        self.partitions = None if partitions is None else int(partitions)
        self.stage_k = None if stage_k is None else int(stage_k)

    def plan(self, n: int, k: int) -> tuple[int, int]:
        requested = self.partitions or DEFAULT_PARTITION_RATIO * k
        return plan_twostage(n, k, requested, self.stage_k)
