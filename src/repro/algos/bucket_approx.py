"""Bucketed approximate top-k (Key et al., "Approximate Top-k for
Increased Parallelism").

Split the input into ``b`` buckets, take the exact top-``k'`` of each
bucket fully in parallel (``k' = ceil(k / b)``, usually 1), and merge
the ``b * k'`` survivors.  A true top-k element is missed only when it
shares a bucket with ``k'`` or more better top-k elements, so recall is
governed by the hypergeometric bucket-occupancy model: with ``b`` a
multiple of ``k``, roughly ``E[1 - recall] ~= k / (2b)``.  The default
``b = 16k`` sits at ~0.97 expected recall while reading the input
exactly once — the cheap, parallelism-maximising end of the approximate
Pareto front.
"""

from __future__ import annotations

from ..approx import plan_buckets
from .approx_base import PartitionApproxTopK

#: default bucket-to-k ratio (recall ~0.97 under the occupancy model)
DEFAULT_BUCKET_RATIO = 16


class BucketApproxTopK(PartitionApproxTopK):
    """Approximate top-k via per-bucket exact top-``k'`` and a merge."""

    name = "bucket_approx"
    library = "approx-top-k (Key et al.)"
    kernel_stage1 = "ApproxBucketTopK"
    kernel_stage2 = "ApproxBucketMerge"

    def __init__(self, *, buckets: int | None = None, fused: bool = True) -> None:
        super().__init__(fused=fused)
        if buckets is not None and int(buckets) < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.buckets = None if buckets is None else int(buckets)

    def plan(self, n: int, k: int) -> tuple[int, int]:
        requested = self.buckets or DEFAULT_BUCKET_RATIO * k
        return plan_buckets(n, k, requested)
