"""``auto`` — cost-model-driven dispatch to the predicted-fastest method.

The paper's virtual SOTA (Sec. 5.1) is computed *after* a sweep: the best
prior algorithm per (N, K, batch) point.  A serving system needs that
decision *before* running — RadiK (Li et al., 2025) makes the same move
with a workload-aware dispatcher over radix/sort kernels.  ``auto`` turns
the repository's analytic cost model into that dispatcher: given a problem
shape it ranks every concrete algorithm with
:func:`repro.perf.costmodel.rank_algorithms` and delegates the run to the
predicted winner, recording the choice in :attr:`last_choice`.

Dispatch is a pure function of (n, k, batch, GPU spec) — a memoised table
lookup at enqueue time, so it adds no device work to the run.  Predictions
can be refined with measured sweep data via a
:class:`repro.perf.calibration.CalibrationCache` (pass ``calibration=``).
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm


class AutoTopK(TopKAlgorithm):
    """Meta-algorithm: run the algorithm the cost model predicts fastest."""

    name = "auto"
    library = "this work"
    category = "dispatch"
    max_k = None
    batched_execution = True

    def __init__(self, *, candidates=None, calibration=None, corrections=None) -> None:
        """``candidates`` restricts the dispatch roster (default: every
        predictable concrete algorithm); ``calibration`` is an optional
        :class:`repro.perf.calibration.CalibrationCache` (or a path to one
        saved as JSON) refining the analytic predictions; ``corrections``
        is an optional :class:`repro.perf.adaptive.CorrectionStore` (or a
        path to one) whose folded drift residuals rescale them — the
        online half of the loop (docs/adaptive.md)."""
        from ..perf.costmodel import PREDICTABLE_ALGORITHMS

        if candidates is not None:
            candidates = tuple(candidates)
            if not candidates:
                raise ValueError("candidates must not be empty")
            if self.name in candidates:
                raise ValueError("auto cannot dispatch to itself")
        self.candidates = candidates or PREDICTABLE_ALGORITHMS
        if isinstance(calibration, (str, bytes)) or hasattr(
            calibration, "__fspath__"
        ):
            from ..perf.calibration import CalibrationCache

            calibration = CalibrationCache.load(calibration)
        self.calibration = calibration
        if isinstance(corrections, (str, bytes)) or hasattr(
            corrections, "__fspath__"
        ):
            from ..perf.adaptive import CorrectionStore

            corrections = CorrectionStore.load(corrections)
        self.corrections = corrections
        #: registry name of the algorithm the most recent run dispatched to
        self.last_choice: str | None = None
        #: full prediction ranking behind the most recent dispatch
        self.last_ranking = []

    # ------------------------------------------------------------------ #
    def supports(self, n: int, k: int) -> str | None:
        from .registry import get_algorithm

        for name in self.candidates:
            if get_algorithm(name).supports(n, k) is None:
                return None
        return f"no dispatch candidate supports n={n}, k={k}"

    def choose(self, *, n: int, k: int, batch: int = 1, spec=None) -> str:
        """Predicted-fastest candidate for a problem shape (no run)."""
        from ..perf.costmodel import rank_algorithms

        self.last_ranking = rank_algorithms(
            n=n,
            k=k,
            batch=batch,
            spec=spec,
            candidates=self.candidates,
            calibration=self.calibration,
        )
        if self.corrections is not None:
            from ..perf.adaptive import corrected_ranking

            if spec is None:
                from ..device import A100

                spec = A100
            self.last_ranking = corrected_ranking(
                self.last_ranking,
                self.corrections,
                n=n,
                k=k,
                batch=batch,
                spec_name=spec.name,
            )
        return self.last_ranking[0].algo

    # ------------------------------------------------------------------ #
    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        from .registry import get_algorithm

        choice = self.choose(
            n=ctx.nominal_n,
            k=ctx.nominal_k,
            batch=ctx.batch,
            spec=ctx.device.spec,
        )
        self.last_choice = choice
        # the dispatch decision is a host-side table lookup made before the
        # launch sequence is enqueued; it adds no device work to the run
        return get_algorithm(choice)._run(ctx)
