"""Common interface of every simulated top-k algorithm.

All ten algorithms (8 baselines + AIR Top-K + GridSelect) implement
:class:`TopKAlgorithm`.  The public entry point normalises inputs once —
batch shape, monotone key encoding, largest/smallest direction — so each
algorithm only sees a 2-d array of ``uint32`` keys whose ascending order is
the selection priority, exactly the key space a CUDA implementation works
in after transcoding.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..device import Device, GPUSpec, A100
from ..primitives import priority_keys


@dataclass
class RunContext:
    """Everything an algorithm implementation needs for one run."""

    #: simulated machine the run is accounted against
    device: Device
    #: monotone keys, shape (batch, n); ascending key order = priority order
    keys: np.ndarray
    #: number of results per problem (already validated, 1 <= k <= n)
    k: int
    #: nominal problem size used for grid sizing and occupancy.  Equals
    #: ``keys.shape[1]`` for exact runs; larger for scaled runs (the data is
    #: a 1/scale sample of the nominal problem — see repro.perf.scaled).
    nominal_n: int
    #: nominal k matching ``nominal_n``
    nominal_k: int
    #: deterministic source for algorithmic randomness (pivot sampling)
    rng: np.random.Generator
    #: the seed ``rng`` was built from.  Host-serialised algorithms that
    #: loop rows re-seed a fresh generator per row from this, so a batched
    #: run replays each row exactly as a single-shot run would (and is
    #: therefore invariant to row order)
    seed: int = 0

    @property
    def batch(self) -> int:
        return self.keys.shape[0]

    @property
    def n(self) -> int:
        return self.keys.shape[1]


@dataclass
class TopKResult:
    """Output of one simulated top-k run."""

    #: selected values in priority order (best first), original dtype.
    #: shape (batch, k), or (k,) if the input was 1-d
    values: np.ndarray
    #: positions of the selected values in the input list, same shape
    indices: np.ndarray
    #: algorithm that produced the result
    algo: str
    #: the simulated machine, carrying timeline, counters and kernel stats
    device: Device
    #: True when part of the input was irrecoverably lost (a failed shard)
    #: and the result is the exact top-k of the *surviving* data only —
    #: see docs/faults.md for the degraded-result contract
    degraded: bool = False
    #: the high-probability recall floor an approximate or degraded result
    #: guarantees against the full-data ground truth; None for exact results
    recall_bound: float | None = None
    #: False for results that are not guaranteed to equal the exact top-k:
    #: approximate-tier selections and degraded (shard-loss) results.  Such
    #: results always carry a ``recall_bound``
    exact: bool = True
    #: recovery/approximation bookkeeping (shards_lost, coverage, retries,
    #: hedges, expected_recall, partitions, ...)
    meta: dict = field(default_factory=dict)

    @property
    def time(self) -> float:
        """Simulated wall-clock time of the run, seconds."""
        return self.device.elapsed

    def __iter__(self):
        """v2.1 results still unpack as the historical 2-tuple.

        ``values, indices = repro.topk(...)`` keeps working; the richer
        fields (``exact``, ``recall_bound``, ``algo``, ``time``, ``meta``)
        are attribute access only.
        """
        yield self.values
        yield self.indices


class UnsupportedProblem(ValueError):
    """Raised when an algorithm cannot handle the requested (n, k).

    Mirrors the gaps in the paper's Fig. 6/7: e.g. WarpSelect supports
    k <= 2048 and Bitonic Top-K k <= 256, so those curves stop early.
    """


class TopKAlgorithm(abc.ABC):
    """Base class for a simulated parallel top-k algorithm."""

    #: registry name, e.g. ``"air_topk"``
    name: str = ""
    #: provenance per the paper's Table 1 (library the reference code is from)
    library: str = ""
    #: taxonomy per Sec. 1: "sorting", "partial sorting", "partition-based"
    category: str = ""
    #: largest k supported, or None for unlimited
    max_k: int | None = None
    #: whether the method can consume data on-the-fly (Sec. 2.2)
    on_the_fly: bool = False
    #: whether a batch is solved by one launch set (device-resident batching)
    #: or serially per problem (the host-coordinated reference codes)
    batched_execution: bool = True
    #: whether results are guaranteed to equal the exact top-k; the
    #: approximate tier (repro.approx) sets this False and annotates every
    #: result with its analytic recall contract via :meth:`_finalize`
    exact: bool = True
    #: name of the analytic recall model backing non-exact results
    #: (``None`` for exact algorithms)
    recall_model: str | None = None

    def supports(self, n: int, k: int) -> str | None:
        """None if the problem is supported, else a human-readable reason."""
        if self.max_k is not None and k > self.max_k:
            return f"{self.name} supports k <= {self.max_k}, got k={k}"
        return None

    def select(
        self,
        data: np.ndarray,
        k: int,
        *,
        device: Device | None = None,
        spec: GPUSpec = A100,
        largest: bool = False,
        seed: int = 0,
        nominal_n: int | None = None,
        nominal_k: int | None = None,
    ) -> TopKResult:
        """Run the algorithm on ``data`` (shape ``(n,)`` or ``(batch, n)``).

        Returns the k smallest (or largest) values per problem together with
        their input positions, plus the simulated device carrying the run's
        timing, traffic counters and trace.
        """
        data = np.asarray(data)
        squeeze = data.ndim == 1
        if squeeze:
            data = data[None, :]
        if data.ndim != 2:
            raise ValueError(
                f"data must be 1-d or 2-d (batch, n), got shape {data.shape}"
            )
        batch, n = data.shape
        if batch == 0:
            raise ValueError("batch must contain at least one problem")
        if n == 0:
            raise ValueError("cannot select from an empty list")
        if not 1 <= k <= n:
            raise ValueError(f"k must be in [1, n={n}], got k={k}")
        nominal_n = n if nominal_n is None else nominal_n
        nominal_k = k if nominal_k is None else nominal_k
        if nominal_n < n or nominal_k < 1:
            raise ValueError("nominal sizes cannot be below the actual sizes")
        reason = self.supports(nominal_n, nominal_k)
        if reason is not None:
            raise UnsupportedProblem(reason)

        if device is None:
            device = Device(spec)
        keys = priority_keys(np.ascontiguousarray(data), largest=largest)
        ctx = RunContext(
            device=device,
            keys=keys,
            k=k,
            nominal_n=nominal_n,
            nominal_k=nominal_k,
            rng=np.random.default_rng(seed),
            seed=seed,
        )
        key_out, idx = self._run(ctx)
        # the benchmark stops its timer after draining the stream; every
        # algorithm pays this final synchronisation (100-run averages in the
        # paper include it)
        device.synchronize("sync_result")
        if idx.shape != (batch, k):
            raise AssertionError(
                f"{self.name} returned indices of shape {idx.shape}, "
                f"expected {(batch, k)}"
            )
        # present results best-first: ascending keys == priority order
        order = np.argsort(key_out, axis=1, kind="stable")
        idx = np.take_along_axis(idx, order, axis=1)
        values = np.take_along_axis(data, idx, axis=1)
        if squeeze:
            values = values[0]
            idx = idx[0]
        result = TopKResult(
            values=values, indices=idx, algo=self.name, device=device
        )
        return self._finalize(result, n=nominal_n, k=nominal_k)

    def _finalize(self, result: TopKResult, *, n: int, k: int) -> TopKResult:
        """Attach fidelity metadata before the result leaves :meth:`select`.

        The exact algorithms return the result untouched; the approximate
        tier overrides this to set ``exact=False`` and the analytic recall
        contract (``recall_bound``, ``meta['expected_recall']``).
        """
        return result

    @abc.abstractmethod
    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        """Produce ``(keys, indices)`` of shape (batch, k), unsorted.

        ``keys`` are the encoded keys of the selected elements (used only to
        order the output); ``indices`` are positions into the input rows.
        """
