"""WarpSelect and BlockSelect — Faiss' queue-based partial sorting methods.

WarpSelect (Johnson et al.) runs one warp per problem; each of the 32 lanes
keeps a private thread queue in registers, and whenever any queue fills, the
warp bitonic-sorts all queues and merges them into the maintained top-k.
BlockSelect extends it to a thread block of 4 warps — still a single block,
so a hundred-SM GPU stays mostly idle (the motivation for GridSelect,
Sec. 4).

Cost shape: a single block is limited to a small slice of device bandwidth
(occupancy term), per-thread-queue bookkeeping further lowers the sustained
rate (``WARP_EFFICIENCY_THREAD_QUEUE``), and the lockstep rounds plus flush
sort/merge work form a serial dependency chain.
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from .queue_common import QueueStats, emulate_queue_select
from ..perf import calibration as cal


class _ThreadQueueSelect(TopKAlgorithm):
    """Common machinery for the per-thread-queue Faiss methods."""

    category = "partial sorting"
    library = "Faiss"
    max_k = 2048
    on_the_fly = True
    batched_execution = True  # Faiss launches one block per batch problem

    #: lockstep lanes per problem (32 = one warp, 128 = 4-warp block)
    lanes: int = 32

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        batch, n = ctx.keys.shape
        result = emulate_queue_select(
            ctx.keys,
            ctx.k,
            lanes=self.lanes,
            mode="thread",
            queue_len=cal.THREAD_QUEUE_LEN,
        )
        self._account(ctx, result.stats)
        return result.keys, result.indices

    def _account(self, ctx: RunContext, stats: QueueStats) -> None:
        batch, n = ctx.keys.shape
        device = ctx.device
        k = ctx.k
        # per-problem critical path: every problem has the same round count,
        # and problems run concurrently on separate blocks
        rounds_per_problem = -(-n // self.lanes)
        flushes_per_problem = stats.flushes / batch
        flush_comps = stats.merge_comparators / max(1, stats.flushes)
        dependent_cycles = (
            rounds_per_problem * cal.ROUND_CYCLES_THREAD_QUEUE
            # a flush stalls the whole block; comparators execute lanes-wide
            + flushes_per_problem
            * (flush_comps / self.lanes)
            * cal.FLUSH_CYCLES_PER_LANE_COMPARATOR
        )
        device.launch_kernel(
            self.kernel_name,
            grid_blocks=batch,
            block_threads=self.lanes,
            bytes_read=4.0 * batch * n,
            bytes_written=8.0 * batch * k,
            flops=(
                cal.THREAD_QUEUE_OPS_PER_ELEM
                * cal.queue_k_ops_factor(ctx.nominal_k)
                * batch
                * n
                + cal.OPS_PER_COMPARATOR * stats.merge_comparators
            ),
            dependent_cycles=dependent_cycles,
            fixed_dependent_cycles=cal.QUEUE_KERNEL_FIXED_CYCLES
            + batch * cal.QUEUE_PER_PROBLEM_CYCLES,
            warp_efficiency=cal.WARP_EFFICIENCY_THREAD_QUEUE,
        )

    @property
    def kernel_name(self) -> str:
        return f"{self.name}_kernel"


class WarpSelect(_ThreadQueueSelect):
    """One warp per problem, 32 private thread queues (Faiss)."""

    name = "warp_select"
    lanes = 32


class BlockSelect(_ThreadQueueSelect):
    """One 4-warp block per problem — Faiss' extension of WarpSelect."""

    name = "block_select"
    lanes = 32 * cal.BLOCK_SELECT_WARPS
