"""Dr. Top-K-style delegate hybrid (Gaihre et al., SC '21 — paper Sec. 2.2).

The hybrid cuts the input into sub-ranges of size ``g``, computes each
sub-range's best element (its *delegate*) with a cheap reduction, selects
the top-k **delegates**, and runs the final top-k only over the k
sub-ranges those delegates came from — ``k * g`` candidates instead of N.

Soundness: if a sub-range S contains a top-k element x, at most k - 1
other elements are at least as good as x, so fewer than k delegates can
beat min(S) <= x — S's delegate is among the top-k delegates (ties
resolved by selecting with <=, i.e. keeping k delegates).  Hence the k
selected sub-ranges cover every top-k element.

The paper treats Dr. Top-K as orthogonal to its contributions: it *needs*
a base top-k algorithm and benefits from a fast one.  This implementation
accepts any registered algorithm as the base, so the claim is testable
(see benchmarks/test_ext_drtopk_hybrid.py).
"""

from __future__ import annotations

import math

import numpy as np

from .base import RunContext, TopKAlgorithm
from ..device import streaming_grid
from ..perf import calibration as cal


class DrTopKHybrid(TopKAlgorithm):
    """Delegate-centric hybrid over a configurable base top-k algorithm."""

    name = "drtopk_hybrid"
    library = "Dr.Top-K"
    category = "hybrid"
    max_k = None
    batched_execution = False  # the reference processes one problem at a time

    def __init__(self, *, base: str = "air_topk", delegate_size: int | None = None):
        """``delegate_size`` is the sub-range length g; by default it is
        chosen near sqrt(N / k), which balances the two selection phases
        (N/g delegates against k*g final candidates)."""
        from .registry import get_algorithm  # late: registry imports this module

        if delegate_size is not None and delegate_size < 1:
            raise ValueError(f"delegate_size must be >= 1, got {delegate_size}")
        self.base = get_algorithm(base)
        self.base_name = base
        self.delegate_size = delegate_size

    def supports(self, n: int, k: int) -> str | None:
        # the base only ever selects over min(N/g, k) <= k... its own k cap
        # still applies to the delegate selection (k delegates are selected)
        return self.base.supports(n, k)

    def _choose_g(self, n: int, k: int) -> int:
        if self.delegate_size is not None:
            return self.delegate_size
        return max(1, int(math.sqrt(n / max(1, k))))

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        batch, n = ctx.keys.shape
        out_keys = np.empty((batch, ctx.k), dtype=ctx.keys.dtype)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            # fresh identically-seeded stream per row (the delegated base
            # may consume it): batched == stacked single-shot runs
            ctx.rng = np.random.default_rng(ctx.seed)
            rk, ri = self._select_row(ctx, ctx.keys[row])
            out_keys[row] = rk
            out_idx[row] = ri
        return out_keys, out_idx

    def _base_select(
        self, ctx: RunContext, keys: np.ndarray, k: int, nominal_n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the base algorithm on a key list, sharing our device."""
        child = RunContext(
            device=ctx.device,
            keys=keys[None, :],
            k=k,
            nominal_n=max(nominal_n, keys.shape[0]),
            nominal_k=k,
            rng=ctx.rng,
            seed=ctx.seed,
        )
        child_keys, child_idx = self.base._run(child)
        return child_keys[0], child_idx[0]

    def _select_row(
        self, ctx: RunContext, row_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        n = row_keys.shape[0]
        k = ctx.k
        g = self._choose_g(ctx.nominal_n, ctx.nominal_k)
        num_ranges = -(-n // g)

        if g <= 1 or num_ranges <= k:
            # no reduction possible: delegate phase would keep everything
            return self._base_select(ctx, row_keys, k, ctx.nominal_n)

        # phase 1: per-sub-range minimum (the delegates) — one reduce kernel
        pad = num_ranges * g - n
        padded = np.concatenate(
            [row_keys, np.full(pad, ~row_keys.dtype.type(0), dtype=row_keys.dtype)]
        )
        ranges = padded.reshape(num_ranges, g)
        delegates = ranges.min(axis=1)
        device.launch_kernel(
            "ComputeDelegates",
            grid_blocks=streaming_grid(
                device.spec,
                max(1, int(n * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            ),
            block_threads=256,
            bytes_read=4.0 * n,
            bytes_written=4.0 * num_ranges,
            flops=1.0 * n,
        )

        # phase 2: top-k of the delegates with the base algorithm
        _, delegate_order = self._base_select(
            ctx, delegates, k, max(1, ctx.nominal_n // g)
        )

        # phase 3: gather the k winning sub-ranges, final top-k over them
        winners = np.sort(delegate_order)
        candidates = ranges[winners].reshape(-1)
        cand_base = winners * g  # original offset of each gathered range
        device.launch_kernel(
            "GatherCandidateRanges",
            grid_blocks=streaming_grid(
                device.spec, max(1, int(candidates.shape[0] * device.scale))
            ),
            block_threads=256,
            bytes_read=4.0 * candidates.shape[0],
            bytes_written=4.0 * candidates.shape[0],
            flops=1.0 * candidates.shape[0],
        )
        final_keys, final_local = self._base_select(
            ctx, candidates, k, max(1, ctx.nominal_k * g)
        )
        # local candidate positions -> original row positions
        final_idx = cand_base[final_local // g] + (final_local % g)
        return final_keys, final_idx
