"""QuickSelect — single-pivot partition-based selection (GpuSelection library).

Each iteration partitions the candidates around one pivot and recurses into
the side containing the k-th element.  The host inspects the partition
counts after every iteration (a PCIe round trip, like all GpuSelection
methods) and stops when the candidate set fits a single-block terminal sort.
Worst-case O(N^2) if pivots are unlucky (Sec. 2.2); median-of-3 sampling
makes that astronomically unlikely on the benchmark's distributions.
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from ..device import next_pow2, streaming_grid
from ..perf import calibration as cal
from ..primitives import comparator_count_sort


class QuickSelect(TopKAlgorithm):
    """GpuSelection-style QuickSelect with host-side pivot control."""

    name = "quick_select"
    library = "GpuSelection"
    category = "partition-based"
    max_k = None
    batched_execution = False

    #: candidate count below which a single-block sort finishes the job
    terminal_size = 1024
    #: hard iteration cap (pathological pivot sequences)
    max_iterations = 128

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        batch, n = ctx.keys.shape
        out_keys = np.empty((batch, ctx.k), dtype=np.uint32)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            # fresh identically-seeded pivot stream per row: the batched
            # run replays each row exactly as a single-shot run would
            ctx.rng = np.random.default_rng(ctx.seed)
            rk, ri = self._select_row(ctx, ctx.keys[row])
            out_keys[row] = rk
            out_idx[row] = ri
        return out_keys, out_idx

    def _pivot(self, ctx: RunContext, cand: np.ndarray) -> np.uint32:
        """Median of three random candidates (computed host-side)."""
        picks = cand[ctx.rng.integers(0, cand.shape[0], size=3)]
        return np.uint32(np.sort(picks)[1])

    def _select_row(
        self, ctx: RunContext, row_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        cand_keys = row_keys
        cand_idx = np.arange(row_keys.shape[0], dtype=np.int64)
        k_rem = ctx.k
        won_keys: list[np.ndarray] = []
        won_idx: list[np.ndarray] = []

        for _ in range(self.max_iterations):
            count = cand_keys.shape[0]
            if k_rem == 0 or count <= max(self.terminal_size, k_rem):
                break
            pivot = self._pivot(ctx, cand_keys)
            lt = cand_keys < pivot
            eq = cand_keys == pivot
            n_lt = int(lt.sum())
            n_eq = int(eq.sum())

            grid = streaming_grid(
                device.spec,
                max(1, int(count * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            # the reference code runs a counting pass, fetches the counts,
            # then launches the scatter pass
            device.launch_kernel(
                "QuickSelectCount",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * count,
                bytes_written=8.0,
                flops=2.0 * count,
            )
            device.synchronize("sync_count")
            device.launch_kernel(
                "QuickSelectScatter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * count,
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * count,
                flops=cal.PARTITION_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_partition")
            device.memcpy_d2h("MemcpyDtoH(counts)", 8.0)
            device.host_compute("host_pivot", cal.HOST_PIVOT_SECONDS)

            if k_rem <= n_lt:
                cand_idx = cand_idx[lt]
                cand_keys = cand_keys[lt]
            elif k_rem <= n_lt + n_eq:
                won_keys.append(cand_keys[lt])
                won_idx.append(cand_idx[lt])
                take = k_rem - n_lt
                won_keys.append(cand_keys[eq][:take])
                won_idx.append(cand_idx[eq][:take])
                k_rem = 0
                break
            else:
                won_keys.append(cand_keys[lt])
                won_idx.append(cand_idx[lt])
                won_keys.append(cand_keys[eq])
                won_idx.append(cand_idx[eq])
                k_rem -= n_lt + n_eq
                gt = ~(lt | eq)
                cand_idx = cand_idx[gt]
                cand_keys = cand_keys[gt]

        if k_rem > 0:
            # terminal single-block sort of the remaining candidates
            count = cand_keys.shape[0]
            order = np.argsort(cand_keys, kind="stable")[:k_rem]
            won_keys.append(cand_keys[order])
            won_idx.append(cand_idx[order])
            device.launch_kernel(
                "QuickSelectTerminalSort",
                grid_blocks=1,
                block_threads=256,
                bytes_read=8.0 * count,
                bytes_written=8.0 * k_rem,
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, count))),
            )
            device.synchronize("sync_final")
        keys = np.concatenate(won_keys)
        idx = np.concatenate(won_idx)
        return keys[: ctx.k], idx[: ctx.k]
