"""QuickSelect — single-pivot partition-based selection (GpuSelection library).

Each iteration partitions the candidates around one pivot and recurses into
the side containing the k-th element.  The host inspects the partition
counts after every iteration (a PCIe round trip, like all GpuSelection
methods) and stops when the candidate set fits a single-block terminal sort.
Worst-case O(N^2) if pivots are unlucky (Sec. 2.2); median-of-3 sampling
makes that astronomically unlikely on the benchmark's distributions.

Batched execution is *fused* by default: every recursion level runs one
launch set (QuickSelectCount, QuickSelectScatter) over the flat
concatenation of all still-active rows' candidates, pays one
synchronisation and one (batch-sized) PCIe round trip per level instead of
one per row, and a single terminal sort covers every row that drops to the
terminal regime.  Pivots stay per-row: each row owns an identically-seeded
generator whose draw sequence matches the per-row reference loop exactly,
so the fused run replays every row byte-identically to a single-shot run.
``fused=False`` keeps the per-row reference loop (the original
host-serialised GpuSelection shape); at ``batch=1`` the two are identical
in both results and accounting.
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from ..device import next_pow2, streaming_grid
from ..perf import calibration as cal
from ..primitives import comparator_count_sort, head_mask, segment_offsets


class QuickSelect(TopKAlgorithm):
    """GpuSelection-style QuickSelect with host-side pivot control."""

    name = "quick_select"
    library = "GpuSelection"
    category = "partition-based"
    max_k = None
    batched_execution = True  # fused batched scheduling (see module docstring)

    #: candidate count below which a single-block sort finishes the job
    terminal_size = 1024
    #: hard iteration cap (pathological pivot sequences)
    max_iterations = 128

    def __init__(self, *, fused: bool = True) -> None:
        """``fused=False`` restores the per-row reference loop, whose
        launches, synchronisations and PCIe round trips replay once per
        row; the capability flag follows the execution mode."""
        self.fused = fused
        self.batched_execution = bool(fused)

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        if self.fused:
            return self._run_fused(ctx)
        batch, n = ctx.keys.shape
        out_keys = np.empty((batch, ctx.k), dtype=np.uint32)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            # fresh identically-seeded pivot stream per row: the batched
            # run replays each row exactly as a single-shot run would
            ctx.rng = np.random.default_rng(ctx.seed)
            rk, ri = self._select_row(ctx, ctx.keys[row])
            out_keys[row] = rk
            out_idx[row] = ri
        return out_keys, out_idx

    def _pivot(self, ctx: RunContext, cand: np.ndarray) -> np.uint32:
        """Median of three random candidates (computed host-side)."""
        picks = cand[ctx.rng.integers(0, cand.shape[0], size=3)]
        return np.uint32(np.sort(picks)[1])

    # ------------------------------------------------------------------ #
    # fused batched execution: one launch set per recursion level
    # ------------------------------------------------------------------ #
    def _run_fused(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        batch, n = ctx.keys.shape
        keys2d = ctx.keys

        # ---- terminal fast path: the whole batch is already below the
        # terminal threshold, so one fused sort finishes every row
        if n <= max(self.terminal_size, ctx.k):
            order = np.argsort(keys2d, axis=1, kind="stable")[:, : ctx.k]
            device.launch_kernel(
                "QuickSelectTerminalSort",
                grid_blocks=batch,
                block_threads=256,
                bytes_read=8.0 * batch * n,
                bytes_written=8.0 * batch * ctx.k,
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, n)))
                * batch,
            )
            device.synchronize("sync_final")
            return np.take_along_axis(keys2d, order, axis=1), order.astype(
                np.int64
            )

        k_rem = np.full(batch, ctx.k, dtype=np.int64)
        count = np.full(batch, n, dtype=np.int64)
        active = np.ones(batch, dtype=bool)
        # one identically-seeded pivot stream per row, consumed exactly as
        # the per-row reference loop consumes it
        rngs = [np.random.default_rng(ctx.seed) for _ in range(batch)]

        # flat row-major candidate state with per-row counts; built lazily
        # after the rectangular iteration 0 (see below)
        cand_rows = np.empty(0, dtype=np.int64)
        cand_keys = np.empty(0, dtype=keys2d.dtype)
        cand_idx = np.empty(0, dtype=np.int64)

        # output chunks, chronological; stable-sorted by row at the end
        out_rows: list[np.ndarray] = []
        out_keys: list[np.ndarray] = []
        out_idx: list[np.ndarray] = []
        # rows that fell to the terminal regime, with their candidates
        term_rows: list[np.ndarray] = []
        term_keys: list[np.ndarray] = []
        term_idx: list[np.ndarray] = []
        term_k: np.ndarray = np.zeros(batch, dtype=np.int64)

        def charge_level(total: int, nrows: int) -> None:
            """Device accounting of one fused recursion level: count pass,
            scatter pass, one (batch-sized) PCIe round trip, host pivots."""
            grid = streaming_grid(
                device.spec,
                max(1, int(total * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            # the reference code runs a counting pass, fetches the counts,
            # then launches the scatter pass — one fused set for all rows
            device.launch_kernel(
                "QuickSelectCount",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * total,
                bytes_written=8.0 * nrows,
                flops=2.0 * total,
            )
            device.synchronize("sync_count")
            device.launch_kernel(
                "QuickSelectScatter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * total,
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * total,
                flops=cal.PARTITION_OPS_PER_ELEM * total,
            )
            device.synchronize("sync_partition")
            device.memcpy_d2h("MemcpyDtoH(counts)", 8.0 * nrows)
            device.host_compute("host_pivot", cal.HOST_PIVOT_SECONDS * nrows)

        # ---- iteration 0 on the rectangle: every row is active with the
        # same candidate count, so the partition masks stay 2-d and the
        # flat state (with its repeat/gather overhead) is built only for
        # the candidates that survive the first partition
        pivots = np.empty(batch, dtype=np.uint32)
        for r in range(batch):
            picks = keys2d[r][rngs[r].integers(0, n, size=3)]
            pivots[r] = np.uint32(np.sort(picks)[1])
        lt2 = keys2d < pivots[:, None]
        n_lt = lt2.sum(axis=1)
        charge_level(batch * n, batch)

        kr = k_rem
        case_a = kr <= n_lt  # recurse into the < side
        if case_a.all():
            # common regime (small k): every row recurses into the < side;
            # the tie masks are never needed
            kr_, kc_ = np.nonzero(lt2)
            cand_rows = kr_.astype(np.int64)
            cand_keys = keys2d[lt2]
            cand_idx = kc_.astype(np.int64)
            count[:] = n_lt
        else:
            eq2 = keys2d == pivots[:, None]
            n_eq = eq2.sum(axis=1)
            case_b = ~case_a & (kr <= n_lt + n_eq)  # pivot ties finish it
            case_c = ~case_a & ~case_b  # recurse into the > side
            # winners: the < side of B/C rows, then the tie elements each
            # row still needs (all of them for C, the first take for B) —
            # the same chunk order the per-row loop appends
            win_lt2 = lt2 & (case_b | case_c)[:, None]
            if win_lt2.any():
                wr, wc = np.nonzero(win_lt2)
                out_rows.append(wr.astype(np.int64))
                out_keys.append(keys2d[win_lt2])
                out_idx.append(wc.astype(np.int64))
            take = np.where(case_b, kr - n_lt, np.where(case_c, n_eq, 0))
            ord2 = np.cumsum(eq2, axis=1) - 1
            win_eq2 = eq2 & (ord2 < take[:, None])
            if win_eq2.any():
                wr, wc = np.nonzero(win_eq2)
                out_rows.append(wr.astype(np.int64))
                out_keys.append(keys2d[win_eq2])
                out_idx.append(wc.astype(np.int64))
            k_rem[case_b] = 0
            k_rem[case_c] -= (n_lt + n_eq)[case_c]
            keep2 = (case_a[:, None] & lt2) | (case_c[:, None] & ~(lt2 | eq2))
            if keep2.any():
                kr_, kc_ = np.nonzero(keep2)
                cand_rows = kr_.astype(np.int64)
                cand_keys = keys2d[keep2]
                cand_idx = kc_.astype(np.int64)
            count[case_a] = n_lt[case_a]
            count[case_b] = 0
            count[case_c] = (count - n_lt - n_eq)[case_c]

        def retire(rows_mask: np.ndarray) -> None:
            """Move ``rows_mask`` rows out of the iteration; rows with
            results still owed go to the shared terminal sort."""
            nonlocal cand_rows, cand_keys, cand_idx
            owed = rows_mask & (k_rem > 0)
            if owed.any():
                sel = owed[cand_rows]
                term_rows.append(cand_rows[sel])
                term_keys.append(cand_keys[sel])
                term_idx.append(cand_idx[sel])
                term_k[owed] = k_rem[owed]
            keep = ~rows_mask[cand_rows]
            cand_rows, cand_keys, cand_idx = (
                cand_rows[keep],
                cand_keys[keep],
                cand_idx[keep],
            )
            active[rows_mask] = False

        # ---- iterations 1+: the surviving candidates are ragged across
        # rows, so the state is flat (row-major) with per-row counts
        for _ in range(1, self.max_iterations):
            # rows small enough (or finished) leave the device loop
            settled = active & (
                (k_rem == 0) | (count <= np.maximum(self.terminal_size, k_rem))
            )
            if settled.any():
                retire(settled)
            rows = np.flatnonzero(active)
            if not rows.size:
                break
            seg_counts = count[rows]
            total = int(seg_counts.sum())
            # per-row median-of-3 pivots, each drawn from its row's own
            # stream (host-side, like the reference loop)
            offsets = segment_offsets(seg_counts)
            pivots = np.empty(rows.size, dtype=np.uint32)
            for i, r in enumerate(rows):
                seg = cand_keys[offsets[i] : offsets[i + 1]]
                picks = seg[rngs[r].integers(0, seg.shape[0], size=3)]
                pivots[i] = np.uint32(np.sort(picks)[1])
            # the flat state is grouped by ascending row, so each
            # element's local row index is a plain repeat of the counts
            local = np.repeat(np.arange(rows.size, dtype=np.int64), seg_counts)
            pivot_elem = pivots[local]
            lt = cand_keys < pivot_elem
            n_lt = np.bincount(local[lt], minlength=rows.size)
            charge_level(total, rows.size)

            kr = k_rem[rows]
            case_a = kr <= n_lt
            if case_a.all():
                # common regime (small k): every row recurses into the <
                # side; the tie masks are never needed
                cand_rows, cand_keys, cand_idx = (
                    cand_rows[lt],
                    cand_keys[lt],
                    cand_idx[lt],
                )
                count[rows] = n_lt
                continue
            eq = cand_keys == pivot_elem
            n_eq = np.bincount(local[eq], minlength=rows.size)
            case_b = ~case_a & (kr <= n_lt + n_eq)
            case_c = ~case_a & ~case_b
            win_lt = lt & (case_b | case_c)[local]
            if win_lt.any():
                out_rows.append(cand_rows[win_lt])
                out_keys.append(cand_keys[win_lt])
                out_idx.append(cand_idx[win_lt])
            take = np.where(case_b, kr - n_lt, np.where(case_c, n_eq, 0))
            eq_pos = np.flatnonzero(eq)
            if eq_pos.size:
                eq_local = local[eq_pos]
                starts = np.searchsorted(eq_local, np.arange(rows.size))
                ordinal = np.arange(
                    eq_pos.size, dtype=np.int64
                ) - starts[eq_local]
                win_eq = eq_pos[ordinal < take[eq_local]]
                if win_eq.size:
                    out_rows.append(cand_rows[win_eq])
                    out_keys.append(cand_keys[win_eq])
                    out_idx.append(cand_idx[win_eq])
            k_rem[rows[case_b]] = 0
            k_rem[rows[case_c]] -= (n_lt + n_eq)[case_c]
            keep = (case_a[local] & lt) | (case_c[local] & ~(lt | eq))
            cand_rows, cand_keys, cand_idx = (
                cand_rows[keep],
                cand_keys[keep],
                cand_idx[keep],
            )
            count[rows[case_a]] = n_lt[case_a]
            count[rows[case_b]] = 0
            count[rows[case_c]] = (seg_counts - n_lt - n_eq)[case_c]
        else:  # iteration cap: remaining rows owe results to the terminal
            retire(active.copy())

        # one shared terminal sort covers every row that still owes results
        if term_rows:
            t_rows = np.concatenate(term_rows)
            t_keys = np.concatenate(term_keys)
            t_idx = np.concatenate(term_idx)
            # stable (row, key) order == per-row stable argsort by key
            order = np.lexsort((t_keys, t_rows))
            t_rows, t_keys, t_idx = t_rows[order], t_keys[order], t_idx[order]
            seg = np.bincount(t_rows, minlength=batch)
            mask = head_mask(seg, term_k)
            out_rows.append(t_rows[mask])
            out_keys.append(t_keys[mask])
            out_idx.append(t_idx[mask])
            counts_sorted = seg[seg > 0]
            comparators = sum(
                comparator_count_sort(next_pow2(max(2, int(c))))
                for c in counts_sorted
            )
            device.launch_kernel(
                "QuickSelectTerminalSort",
                grid_blocks=int(counts_sorted.size),
                block_threads=256,
                bytes_read=8.0 * float(counts_sorted.sum()),
                bytes_written=8.0 * float(term_k.sum()),
                flops=cal.OPS_PER_COMPARATOR * comparators,
            )
            device.synchronize("sync_final")

        all_rows = np.concatenate(out_rows)
        totals = np.bincount(all_rows, minlength=batch)
        if not (totals == ctx.k).all():
            bad = int(np.flatnonzero(totals != ctx.k)[0])
            raise AssertionError(
                f"QuickSelect produced {int(totals[bad])} results for row "
                f"{bad}, expected {ctx.k}"
            )
        order = np.argsort(all_rows, kind="stable")
        return (
            np.concatenate(out_keys)[order].reshape(batch, ctx.k),
            np.concatenate(out_idx)[order].reshape(batch, ctx.k),
        )

    # ------------------------------------------------------------------ #
    # per-row reference loop (the pre-fusion execution)
    # ------------------------------------------------------------------ #
    def _select_row(
        self, ctx: RunContext, row_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        cand_keys = row_keys
        cand_idx = np.arange(row_keys.shape[0], dtype=np.int64)
        k_rem = ctx.k
        won_keys: list[np.ndarray] = []
        won_idx: list[np.ndarray] = []

        for _ in range(self.max_iterations):
            count = cand_keys.shape[0]
            if k_rem == 0 or count <= max(self.terminal_size, k_rem):
                break
            pivot = self._pivot(ctx, cand_keys)
            lt = cand_keys < pivot
            eq = cand_keys == pivot
            n_lt = int(lt.sum())
            n_eq = int(eq.sum())

            grid = streaming_grid(
                device.spec,
                max(1, int(count * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            # the reference code runs a counting pass, fetches the counts,
            # then launches the scatter pass
            device.launch_kernel(
                "QuickSelectCount",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * count,
                bytes_written=8.0,
                flops=2.0 * count,
            )
            device.synchronize("sync_count")
            device.launch_kernel(
                "QuickSelectScatter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * count,
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * count,
                flops=cal.PARTITION_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_partition")
            device.memcpy_d2h("MemcpyDtoH(counts)", 8.0)
            device.host_compute("host_pivot", cal.HOST_PIVOT_SECONDS)

            if k_rem <= n_lt:
                cand_idx = cand_idx[lt]
                cand_keys = cand_keys[lt]
            elif k_rem <= n_lt + n_eq:
                won_keys.append(cand_keys[lt])
                won_idx.append(cand_idx[lt])
                take = k_rem - n_lt
                won_keys.append(cand_keys[eq][:take])
                won_idx.append(cand_idx[eq][:take])
                k_rem = 0
                break
            else:
                won_keys.append(cand_keys[lt])
                won_idx.append(cand_idx[lt])
                won_keys.append(cand_keys[eq])
                won_idx.append(cand_idx[eq])
                k_rem -= n_lt + n_eq
                gt = ~(lt | eq)
                cand_idx = cand_idx[gt]
                cand_keys = cand_keys[gt]

        if k_rem > 0:
            # terminal single-block sort of the remaining candidates
            count = cand_keys.shape[0]
            order = np.argsort(cand_keys, kind="stable")[:k_rem]
            won_keys.append(cand_keys[order])
            won_idx.append(cand_idx[order])
            device.launch_kernel(
                "QuickSelectTerminalSort",
                grid_blocks=1,
                block_threads=256,
                bytes_read=8.0 * count,
                bytes_written=8.0 * k_rem,
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, count))),
            )
            device.synchronize("sync_final")
        keys = np.concatenate(won_keys)
        idx = np.concatenate(won_idx)
        return keys[: ctx.k], idx[: ctx.k]
