"""Shared engine of the partition-based approximate top-k algorithms.

Both approximate methods — the bucketed top-k of Key et al. and the
generalized two-stage top-k of Samaga et al. — are instances of one
scheme: scatter the input across ``parts`` partitions with a seeded
affine permutation, keep the best ``keep`` per partition in registers
during a *single* streaming pass, then run an exact top-k over the
``parts * keep`` survivors.  They differ only in how ``(parts, keep)``
is planned (and therefore where they sit on the recall/time Pareto
front), so the execution, the fused batching, and the recall annotation
live here.

Fused across the batch dimension like the PR 5 hot paths: one stage-1
launch streams the concatenated rows, one stage-2 launch merges every
row's survivors (``fused=False`` replays the identical math row by row
as the per-launch reference).  A single read of the input is the whole
point — the exact baselines are ≥2-pass — and is what the recall-bench
Pareto sweep measures.

The recall annotation is the hypergeometric occupancy model of
:mod:`repro.approx.recall`; results carry ``exact=False``, the
high-probability ``recall_bound`` floor, and the analytic
``expected_recall`` in ``meta`` — the same contract degraded sharded
results attach (docs/faults.md), so the serving layer reasons about
both uniformly.
"""

from __future__ import annotations

import numpy as np

from ..approx import (
    APPROX_WARP_EFFICIENCY,
    expected_recall,
    partition_sizes,
    recall_floor,
    stage1_workload,
    stage2_workload,
)
from ..device import streaming_grid
from ..perf import calibration as cal
from ..primitives import affine_partitions, partition_topc
from .base import RunContext, TopKAlgorithm, TopKResult


class PartitionApproxTopK(TopKAlgorithm):
    """Base class of the partitioned approximate top-k methods."""

    category = "approximate"
    exact = False
    recall_model = "hypergeometric-occupancy"
    on_the_fly = True
    #: kernel names charged for the two stages (per-method narrative)
    kernel_stage1 = "ApproxPartitionTopK"
    kernel_stage2 = "ApproxMerge"

    def __init__(self, *, fused: bool = True) -> None:
        self.fused = fused

    # ------------------------------------------------------------------ #
    # planning and recall
    # ------------------------------------------------------------------ #
    def plan(self, n: int, k: int) -> tuple[int, int]:
        """Validated ``(parts, keep)`` config for an (n, k) problem."""
        raise NotImplementedError

    def plan_is_exact(self, n: int, k: int) -> bool:
        """True when the planned config degenerates to exact selection."""
        parts, keep = self.plan(n, k)
        max_size = max(size for size, _ in partition_sizes(n, parts))
        return parts == 1 or keep >= max_size

    def expected_recall(self, n: int, k: int) -> float:
        """Analytic E[recall] of this method's planned config."""
        parts, keep = self.plan(n, k)
        return expected_recall(n, k, parts, keep)

    def recall_floor(self, n: int, k: int) -> float:
        """High-probability recall floor of this method's planned config."""
        if self.plan_is_exact(n, k):
            return 1.0
        parts, keep = self.plan(n, k)
        return recall_floor(n, k, parts, keep)

    def _finalize(self, result: TopKResult, *, n: int, k: int) -> TopKResult:
        parts, keep = self.plan(n, k)
        exact = self.plan_is_exact(n, k)
        result.exact = exact
        result.recall_bound = 1.0 if exact else recall_floor(n, k, parts, keep)
        result.meta.update(
            expected_recall=1.0 if exact else expected_recall(n, k, parts, keep),
            partitions=parts,
            keep=keep,
            recall_model=self.recall_model,
        )
        return result

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        parts, keep = self.plan(ctx.n, ctx.k)
        if self.fused or ctx.batch == 1:
            return self._select_rows(ctx, ctx.keys, parts, keep)
        # per-row reference: identical math, one launch set per row
        outs = [
            self._select_rows(ctx, ctx.keys[r : r + 1], parts, keep)
            for r in range(ctx.batch)
        ]
        return (
            np.concatenate([k2 for k2, _ in outs], axis=0),
            np.concatenate([i2 for _, i2 in outs], axis=0),
        )

    def _select_rows(
        self, ctx: RunContext, keys2d: np.ndarray, parts: int, keep: int
    ) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        batch, n = keys2d.shape
        total = batch * n
        # the scatter depends only on (n, parts, seed): batched and
        # single-shot runs of the same row select identically
        order, sizes = affine_partitions(n, parts, seed=ctx.seed)
        grid = streaming_grid(
            device.spec,
            max(1, int(total * device.scale)),
            items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
        )
        # stage 1: one streaming pass; best-`keep` register queue per
        # partition, survivors scattered to a (batch, parts*keep) buffer
        cand_keys, cand_idx = partition_topc(keys2d, order, sizes, keep)
        device.launch_kernel(
            self.kernel_stage1,
            grid_blocks=grid,
            block_threads=256,
            warp_efficiency=APPROX_WARP_EFFICIENCY,
            **stage1_workload(n, parts, keep, batch),
        )
        # stage 2 consumes stage 1's device buffers on the same stream —
        # no host round trip between the stages (the single-sync shape is
        # the entire point of both approximate schemes); only the final
        # result sync in select() is paid
        m = cand_keys.shape[1]
        sel = np.argsort(cand_keys, axis=1, kind="stable")[:, : ctx.k]
        device.launch_kernel(
            self.kernel_stage2,
            grid_blocks=streaming_grid(
                device.spec,
                max(1, int(m * batch * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            ),
            block_threads=256,
            **stage2_workload(m, ctx.k, batch),
        )
        return (
            np.take_along_axis(cand_keys, sel, axis=1),
            np.take_along_axis(cand_idx, sel, axis=1),
        )
