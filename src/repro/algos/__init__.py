"""The eight baseline top-k algorithms from the paper's Table 1."""

from .auto import AutoTopK
from .base import RunContext, TopKAlgorithm, TopKResult, UnsupportedProblem
from .registry import (
    AlgorithmInfo,
    algorithm_names,
    available_algorithms,
    get_algorithm,
)
from .sort_topk import SortTopK
from .radix_select import RadixSelect
from .warp_select import BlockSelect, WarpSelect
from .bitonic_topk import BitonicTopK
from .quick_select import QuickSelect
from .bucket_select import BucketSelect
from .sample_select import SampleSelect
from .hybrid import DrTopKHybrid
from .approx_base import PartitionApproxTopK
from .bucket_approx import BucketApproxTopK
from .twostage_approx import TwoStageApproxTopK

__all__ = [
    "AutoTopK",
    "RunContext",
    "TopKAlgorithm",
    "TopKResult",
    "UnsupportedProblem",
    "AlgorithmInfo",
    "algorithm_names",
    "available_algorithms",
    "get_algorithm",
    "SortTopK",
    "RadixSelect",
    "WarpSelect",
    "BlockSelect",
    "BitonicTopK",
    "QuickSelect",
    "BucketSelect",
    "SampleSelect",
    "DrTopKHybrid",
    "PartitionApproxTopK",
    "BucketApproxTopK",
    "TwoStageApproxTopK",
]
