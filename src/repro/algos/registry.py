"""Name -> algorithm registry covering the paper's full benchmark roster.

The eight baselines of Table 1 plus the paper's two contributions, under
the names the benchmark harness and figures use, plus the ``auto``
dispatcher that picks among them with the cost model.
"""

from __future__ import annotations

from .auto import AutoTopK
from .base import TopKAlgorithm
from .hybrid import DrTopKHybrid
from .sort_topk import SortTopK
from .radix_select import RadixSelect
from .warp_select import BlockSelect, WarpSelect
from .bitonic_topk import BitonicTopK
from .quick_select import QuickSelect
from .bucket_select import BucketSelect
from .sample_select import SampleSelect

_FACTORIES: dict[str, type[TopKAlgorithm] | object] = {}


def _register(factory) -> None:
    name = factory().name if isinstance(factory, type) else factory.name
    _FACTORIES[name] = factory


def available_algorithms() -> list[str]:
    """Registered algorithm names (the paper's 10-method roster)."""
    _ensure_core()
    return sorted(_FACTORIES)


def get_algorithm(name: str, **kwargs) -> TopKAlgorithm:
    """Instantiate an algorithm by registry name.

    Keyword arguments are forwarded to the constructor (e.g.
    ``get_algorithm("air_topk", adaptive=False)`` for the Fig. 9 ablation).
    """
    _ensure_core()
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        )
    return _FACTORIES[name](**kwargs)


def _ensure_core() -> None:
    """Register the core contributions lazily (they import algos.base)."""
    if "air_topk" in _FACTORIES:
        return
    from ..core.air_topk import AIRTopK
    from ..core.grid_select import GridSelect

    for factory in (AIRTopK, GridSelect):
        _register(factory)


for _factory in (
    AutoTopK,
    DrTopKHybrid,
    SortTopK,
    RadixSelect,
    WarpSelect,
    BlockSelect,
    BitonicTopK,
    QuickSelect,
    BucketSelect,
    SampleSelect,
):
    _register(_factory)
