"""Name -> algorithm registry covering the paper's full benchmark roster.

The eight baselines of Table 1 plus the paper's two contributions, under
the names the benchmark harness and figures use, plus the ``auto``
dispatcher that picks among them with the cost model.

Construction is uniform across the roster: every algorithm is built via
:func:`get_algorithm` with one optional ``params`` dict of
algorithm-specific tuning (``get_algorithm("air_topk", params={"alpha":
64.0})``), and :func:`available_algorithms` returns structured
:class:`AlgorithmInfo` capability records — supported dtypes, batch
behaviour, k limits and the tunables each constructor accepts — rather
than bare names (use :func:`algorithm_names` for those).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from .auto import AutoTopK
from .base import TopKAlgorithm
from .bucket_approx import BucketApproxTopK
from .hybrid import DrTopKHybrid
from .twostage_approx import TwoStageApproxTopK
from .sort_topk import SortTopK
from .radix_select import RadixSelect
from .warp_select import BlockSelect, WarpSelect
from .bitonic_topk import BitonicTopK
from .quick_select import QuickSelect
from .bucket_select import BucketSelect
from .sample_select import SampleSelect

_FACTORIES: dict[str, type[TopKAlgorithm] | object] = {}

#: every key dtype the monotone encoding supports (repro.primitives.radix)
SUPPORTED_DTYPES = (
    "float16",
    "float32",
    "float64",
    "int16",
    "int32",
    "int64",
    "uint16",
    "uint32",
    "uint64",
)


@dataclass(frozen=True)
class AlgorithmInfo:
    """Structured capability record for one registered algorithm.

    This is what :func:`available_algorithms` returns: enough metadata
    for a caller (the CLI, the serving layer, a dispatcher) to decide
    whether and how to use a method without instantiating it first.
    """

    #: registry name, e.g. ``"air_topk"``
    name: str
    #: provenance per the paper's Table 1
    library: str
    #: taxonomy per Sec. 1 ("sorting", "partial sorting", "partition-based")
    category: str
    #: largest supported k, or None for unlimited
    max_k: int | None
    #: whether a batch runs as one device-resident launch set (True) or
    #: serially per problem on the host (False)
    batched_execution: bool
    #: whether the method can consume data on-the-fly (Sec. 2.2)
    on_the_fly: bool
    #: key dtypes the method accepts (all share the monotone key encoding)
    dtypes: tuple[str, ...] = SUPPORTED_DTYPES
    #: names of the constructor's tuning parameters (valid ``params`` keys)
    tunables: tuple[str, ...] = field(default_factory=tuple)
    #: whether results are guaranteed to equal the exact top-k; the
    #: approximate tier trades bounded recall for parallelism instead
    exact: bool = True
    #: analytic recall model backing non-exact results (None when exact)
    recall_model: str | None = None


def _register(factory) -> None:
    name = factory().name if isinstance(factory, type) else factory.name
    _FACTORIES[name] = factory


def _tunables(factory) -> tuple[str, ...]:
    """Keyword parameters of the factory's constructor, by inspection."""
    target = factory.__init__ if isinstance(factory, type) else factory
    try:
        sig = inspect.signature(target)
    except (TypeError, ValueError):
        return ()
    return tuple(
        p.name
        for p in sig.parameters.values()
        if p.name not in ("self",)
        and p.kind
        in (inspect.Parameter.KEYWORD_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
    )


def _info(name: str) -> AlgorithmInfo:
    instance = _FACTORIES[name]()
    return AlgorithmInfo(
        name=instance.name,
        library=instance.library,
        category=instance.category,
        max_k=instance.max_k,
        batched_execution=instance.batched_execution,
        on_the_fly=instance.on_the_fly,
        tunables=_tunables(_FACTORIES[name]),
        exact=instance.exact,
        recall_model=instance.recall_model,
    )


def available_algorithms() -> list[AlgorithmInfo]:
    """Capability records of every registered algorithm, sorted by name.

    Each entry is an :class:`AlgorithmInfo` (supported dtypes, batch
    support, k limits, tunables).  For the plain name list — CLI choices,
    parametrised tests — use :func:`algorithm_names`.
    """
    _ensure_core()
    return [_info(name) for name in sorted(_FACTORIES)]


def algorithm_names() -> list[str]:
    """Registered algorithm names (the paper's 10-method roster + extras)."""
    _ensure_core()
    return sorted(_FACTORIES)


def get_algorithm(
    name: str, *, params: dict | None = None, **kwargs
) -> TopKAlgorithm:
    """Instantiate an algorithm by registry name, with uniform tuning.

    Algorithm-specific tuning goes through the single ``params`` dict
    (``get_algorithm("air_topk", params={"adaptive": False})`` for the
    Fig. 9 ablation); valid keys are the ``tunables`` of the method's
    :class:`AlgorithmInfo`.  Plain keyword arguments are still accepted
    and merged (``params`` wins on conflict) so existing internal call
    sites keep working.
    """
    _ensure_core()
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {algorithm_names()}"
        )
    merged = dict(kwargs)
    if params:
        merged.update(params)
    return _FACTORIES[name](**merged)


def _ensure_core() -> None:
    """Register the core contributions lazily (they import algos.base)."""
    if "air_topk" in _FACTORIES:
        return
    from ..core.air_topk import AIRTopK
    from ..core.grid_select import GridSelect

    for factory in (AIRTopK, GridSelect):
        _register(factory)


for _factory in (
    AutoTopK,
    DrTopKHybrid,
    SortTopK,
    RadixSelect,
    WarpSelect,
    BlockSelect,
    BitonicTopK,
    QuickSelect,
    BucketSelect,
    SampleSelect,
    BucketApproxTopK,
    TwoStageApproxTopK,
):
    _register(_factory)
