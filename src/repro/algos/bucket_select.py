"""BucketSelect — partition by linear value buckets (Alabi et al.).

Each iteration computes the candidate min/max on the device, splits the
value range into 256 equal-width buckets, histograms the candidates, and
keeps only the bucket containing the k-th element.  The bucket boundaries
are derived from data statistics (unlike RadixSelect's data-independent
digits, Sec. 2.2), which costs an extra reduction kernel and PCIe round
trip per iteration.
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from ..device import next_pow2, streaming_grid
from ..perf import calibration as cal
from ..primitives import (
    comparator_count_sort,
    digit_histogram,
    find_target_bucket,
    inclusive_scan,
    partition_three_way,
)


class BucketSelect(TopKAlgorithm):
    """GpuSelection-style BucketSelect with 256 linear buckets."""

    name = "bucket_select"
    library = "GpuSelection"
    category = "partition-based"
    max_k = None
    batched_execution = False

    num_buckets = 256
    terminal_size = 1024
    max_iterations = 64

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        batch, n = ctx.keys.shape
        out_keys = np.empty((batch, ctx.k), dtype=np.uint32)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            rk, ri = self._select_row(ctx, ctx.keys[row])
            out_keys[row] = rk
            out_idx[row] = ri
        return out_keys, out_idx

    def _bucket_of(
        self, keys: np.ndarray, lo: np.uint64, hi: np.uint64
    ) -> np.ndarray:
        """Linear bucket index of each key within [lo, hi], in [0, 256)."""
        span = np.uint64(hi) - np.uint64(lo) + np.uint64(1)
        rel = keys.astype(np.uint64) - np.uint64(lo)
        return (rel * np.uint64(self.num_buckets) // span).astype(np.uint32)

    def _select_row(
        self, ctx: RunContext, row_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        cand_keys = row_keys
        cand_idx = np.arange(row_keys.shape[0], dtype=np.int64)
        k_rem = ctx.k
        won_keys: list[np.ndarray] = []
        won_idx: list[np.ndarray] = []

        for _ in range(self.max_iterations):
            count = cand_keys.shape[0]
            if k_rem == 0 or count <= max(self.terminal_size, k_rem):
                break
            grid = streaming_grid(
                device.spec,
                max(1, int(count * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            # min/max reduction to fix the bucket boundaries
            lo = np.uint64(cand_keys.min())
            hi = np.uint64(cand_keys.max())
            device.launch_kernel(
                "MinMaxReduce",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * count,
                bytes_written=8.0,
                flops=2.0 * count,
            )
            device.synchronize("sync_minmax")
            device.memcpy_d2h("MemcpyDtoH(minmax)", 8.0)
            if lo == hi:
                break  # all candidates equal: any k_rem of them are results

            buckets = self._bucket_of(cand_keys, lo, hi)
            hist = digit_histogram(buckets, self.num_buckets)
            device.launch_kernel(
                "BucketHistogram",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * count,
                bytes_written=self.num_buckets * 4.0,
                flops=cal.HISTOGRAM_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_hist")
            device.memcpy_d2h("MemcpyDtoH(hist)", self.num_buckets * 4.0)
            device.host_compute("host_scan", cal.HOST_SCAN_SECONDS)
            # bucket offsets are scanned on the device before scattering
            device.launch_kernel(
                "ScanBucketOffsets",
                grid_blocks=1,
                block_threads=256,
                bytes_read=self.num_buckets * 4.0,
                bytes_written=self.num_buckets * 4.0,
                flops=float(self.num_buckets * 8),
                scalable=False,
            )
            device.synchronize("sync_scan")
            psum = inclusive_scan(hist)
            target = int(find_target_bucket(psum, k_rem))

            winners, survivors = partition_three_way(
                cand_keys, cand_idx, buckets, target
            )
            device.launch_kernel(
                "BucketFilter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * count,
                # the reference implementation scatters the whole candidate
                # array into grouped buckets, not only the surviving one
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * count,
                flops=cal.FILTER_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_filter")
            won_keys.append(winners.keys)
            won_idx.append(winners.indices)
            k_rem -= winners.count
            cand_keys = survivors.keys
            cand_idx = survivors.indices

        if k_rem > 0:
            count = cand_keys.shape[0]
            order = np.argsort(cand_keys, kind="stable")[:k_rem]
            won_keys.append(cand_keys[order])
            won_idx.append(cand_idx[order])
            device.launch_kernel(
                "BucketTerminalSort",
                grid_blocks=1,
                block_threads=256,
                bytes_read=8.0 * count,
                bytes_written=8.0 * k_rem,
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, count))),
            )
            device.synchronize("sync_final")
        keys = np.concatenate(won_keys)
        idx = np.concatenate(won_idx)
        return keys[: ctx.k], idx[: ctx.k]
