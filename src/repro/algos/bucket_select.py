"""BucketSelect — partition by linear value buckets (Alabi et al.).

Each iteration computes the candidate min/max on the device, splits the
value range into 256 equal-width buckets, histograms the candidates, and
keeps only the bucket containing the k-th element.  The bucket boundaries
are derived from data statistics (unlike RadixSelect's data-independent
digits, Sec. 2.2), which costs an extra reduction kernel and PCIe round
trip per iteration.

Batched execution is *fused* by default: every iteration runs one launch
set (MinMaxReduce, BucketHistogram, ScanBucketOffsets, BucketFilter) over
the flat concatenation of all still-active rows' candidates, pays one
synchronisation and one (batch-sized) PCIe round trip per step instead of
one per row, and a single terminal sort covers every row that drops to the
terminal regime — the RadiK-style batched scheduling the paper's related
work describes.  ``fused=False`` keeps the per-row reference loop (the
original host-serialised GpuSelection shape); at ``batch=1`` the two are
identical in both results and accounting.
"""

from __future__ import annotations

import numpy as np

from .base import RunContext, TopKAlgorithm
from ..device import next_pow2, streaming_grid
from ..perf import calibration as cal
from ..primitives import (
    batched_digit_histogram,
    comparator_count_sort,
    digit_histogram,
    find_target_bucket,
    flat_histogram,
    head_mask,
    inclusive_scan,
    partition_three_way,
    segment_min_max,
    segment_offsets,
)


class BucketSelect(TopKAlgorithm):
    """GpuSelection-style BucketSelect with 256 linear buckets."""

    name = "bucket_select"
    library = "GpuSelection"
    category = "partition-based"
    max_k = None
    batched_execution = True  # fused batched scheduling (see module docstring)

    num_buckets = 256
    terminal_size = 1024
    max_iterations = 64

    def __init__(self, *, fused: bool = True) -> None:
        """``fused=False`` restores the per-row reference loop, whose
        launches, synchronisations and PCIe round trips replay once per
        row; the capability flag follows the execution mode."""
        self.fused = fused
        self.batched_execution = bool(fused)

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        if self.fused:
            return self._run_fused(ctx)
        batch, n = ctx.keys.shape
        out_keys = np.empty((batch, ctx.k), dtype=ctx.keys.dtype)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            rk, ri = self._select_row(ctx, ctx.keys[row])
            out_keys[row] = rk
            out_idx[row] = ri
        return out_keys, out_idx

    def _bucket_of(
        self, keys: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Linear bucket index of each key within [lo, hi], in [0, 256).

        ``lo``/``hi`` may be scalars (one row) or per-row columns
        broadcasting against 2-d ``keys``.  Computed in float64 — the
        multiply by ``num_buckets / span`` is monotone non-decreasing and
        truncation keeps it so, which is all a splitting rule needs (the
        GPU reference uses the same float bucket function); integer
        division would cost ~8x more host time for identical selections.
        """
        lo64 = np.asarray(lo, dtype=np.uint64)
        span = (np.uint64(1) + np.asarray(hi, dtype=np.uint64) - lo64).astype(
            np.float64
        )
        # a row spanning the full uint64 range wraps span to 0; every key
        # then lands in bucket 0 (the terminal cap still finishes the row)
        scale = np.where(
            span > 0.0,
            np.float64(self.num_buckets) / np.maximum(span, 1.0),
            0.0,
        )
        rel = (keys.astype(np.uint64) - lo64).astype(np.float64)
        raw = (rel * scale).astype(np.uint32)
        return np.minimum(raw, np.uint32(self.num_buckets - 1))

    # ------------------------------------------------------------------ #
    # fused batched execution: one launch set per iteration, all rows
    # ------------------------------------------------------------------ #
    def _run_fused(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        batch, n = ctx.keys.shape
        nb = self.num_buckets
        keys2d = ctx.keys

        k_rem = np.full(batch, ctx.k, dtype=np.int64)
        count = np.full(batch, n, dtype=np.int64)
        active = np.ones(batch, dtype=bool)

        # output chunks, chronological; stable-sorted by row at the end
        out_rows: list[np.ndarray] = []
        out_keys: list[np.ndarray] = []
        out_idx: list[np.ndarray] = []
        # rows that fell to the terminal regime, with their candidates
        term_rows: list[np.ndarray] = []
        term_keys: list[np.ndarray] = []
        term_idx: list[np.ndarray] = []
        term_k: np.ndarray = np.zeros(batch, dtype=np.int64)

        # ---- terminal fast path: the whole batch is already below the
        # terminal threshold, so one fused sort finishes every row without
        # ever building the flat candidate state
        if n <= max(self.terminal_size, ctx.k):
            order = np.argsort(keys2d, axis=1, kind="stable")[:, : ctx.k]
            device.launch_kernel(
                "BucketTerminalSort",
                grid_blocks=batch,
                block_threads=256,
                bytes_read=8.0 * batch * n,
                bytes_written=8.0 * batch * ctx.k,
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, n)))
                * batch,
            )
            device.synchronize("sync_final")
            return np.take_along_axis(keys2d, order, axis=1), order.astype(
                np.int64
            )

        # ---- iteration 0 on the rectangle: every row is active with the
        # same candidate count, so bucket math broadcasts per-row bounds
        # instead of gathering per-element ones and the flat state (with
        # its repeat/searchsorted overhead) is built only for the ~1/256
        # of elements that survive the first filter
        total = batch * n
        grid = streaming_grid(
            device.spec,
            max(1, int(total * device.scale)),
            items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
        )
        lo_r = keys2d.min(axis=1)
        hi_r = keys2d.max(axis=1)
        device.launch_kernel(
            "MinMaxReduce",
            grid_blocks=grid,
            block_threads=256,
            bytes_read=4.0 * total,
            bytes_written=8.0 * batch,
            flops=2.0 * total,
        )
        device.synchronize("sync_minmax")
        device.memcpy_d2h("MemcpyDtoH(minmax)", 8.0 * batch)
        flat0 = lo_r == hi_r  # constant rows: any k of them are results
        if flat0.any():
            fr = np.flatnonzero(flat0)
            term_rows.append(np.repeat(fr, n))
            term_keys.append(keys2d[fr].ravel())
            term_idx.append(np.tile(np.arange(n, dtype=np.int64), fr.size))
            term_k[fr] = k_rem[fr]
            active[fr] = False
        rows0 = np.flatnonzero(active)
        if rows0.size:
            sub = keys2d if rows0.size == batch else keys2d[rows0]
            total = rows0.size * n
            grid = streaming_grid(
                device.spec,
                max(1, int(total * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            buckets2 = self._bucket_of(
                sub, lo_r[rows0][:, None], hi_r[rows0][:, None]
            )
            hist = batched_digit_histogram(buckets2, nb)
            device.launch_kernel(
                "BucketHistogram",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * total,
                bytes_written=rows0.size * nb * 4.0,
                flops=cal.HISTOGRAM_OPS_PER_ELEM * total,
            )
            device.synchronize("sync_hist")
            device.memcpy_d2h("MemcpyDtoH(hist)", rows0.size * nb * 4.0)
            device.host_compute(
                "host_scan", cal.HOST_SCAN_SECONDS * rows0.size
            )
            device.launch_kernel(
                "ScanBucketOffsets",
                grid_blocks=rows0.size,
                block_threads=256,
                bytes_read=rows0.size * nb * 4.0,
                bytes_written=rows0.size * nb * 4.0,
                flops=float(rows0.size * nb * 8),
                scalable=False,
            )
            device.synchronize("sync_scan")
            psum = inclusive_scan(hist, axis=1)
            target = np.asarray(
                find_target_bucket(psum, k_rem[rows0]), dtype=np.int64
            )
            win2 = buckets2 < target[:, None]
            keep2 = buckets2 == target[:, None]
            device.launch_kernel(
                "BucketFilter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * total,
                # the reference implementation scatters the whole candidate
                # array into grouped buckets, not only the surviving one
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * total,
                flops=cal.FILTER_OPS_PER_ELEM * total,
            )
            device.synchronize("sync_filter")
            in_target = np.take_along_axis(hist, target[:, None], axis=1)[:, 0]
            below = (
                np.take_along_axis(psum, target[:, None], axis=1)[:, 0]
                - in_target
            )
            if below.any():
                wr, wc = np.nonzero(win2)
                out_rows.append(rows0[wr])
                out_keys.append(sub[win2])
                out_idx.append(wc.astype(np.int64))
                k_rem[rows0] -= below
            kr, kc = np.nonzero(keep2)
            cand_rows = rows0[kr]
            cand_keys = sub[keep2]
            cand_idx = kc.astype(np.int64)
            count[rows0] = in_target
        else:
            cand_rows = np.empty(0, dtype=np.int64)
            cand_keys = np.empty(0, dtype=keys2d.dtype)
            cand_idx = np.empty(0, dtype=np.int64)

        def retire(rows_mask: np.ndarray) -> None:
            """Move ``rows_mask`` rows out of the iteration; rows with
            results still owed go to the shared terminal sort."""
            nonlocal cand_rows, cand_keys, cand_idx
            owed = rows_mask & (k_rem > 0)
            if owed.any():
                sel = owed[cand_rows]
                term_rows.append(cand_rows[sel])
                term_keys.append(cand_keys[sel])
                term_idx.append(cand_idx[sel])
                term_k[owed] = k_rem[owed]
            keep = ~rows_mask[cand_rows]
            cand_rows, cand_keys, cand_idx = (
                cand_rows[keep],
                cand_keys[keep],
                cand_idx[keep],
            )
            active[rows_mask] = False

        # ---- iterations 1+: the surviving candidates are ragged across
        # rows, so the state is flat (row-major) with per-row counts
        for _ in range(1, self.max_iterations):
            # rows small enough (or finished) leave the device loop
            settled = active & (
                (k_rem == 0) | (count <= np.maximum(self.terminal_size, k_rem))
            )
            if settled.any():
                retire(settled)
            rows = np.flatnonzero(active)
            if not rows.size:
                break
            total = int(count[rows].sum())
            grid = streaming_grid(
                device.spec,
                max(1, int(total * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            # min/max reduction over every active row in one fused launch
            offsets = segment_offsets(count[rows])
            lo, hi = segment_min_max(cand_keys, offsets)
            device.launch_kernel(
                "MinMaxReduce",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * total,
                bytes_written=8.0 * rows.size,
                flops=2.0 * total,
            )
            device.synchronize("sync_minmax")
            device.memcpy_d2h("MemcpyDtoH(minmax)", 8.0 * rows.size)
            flat = lo == hi  # all candidates equal: any k_rem are results
            if flat.any():
                flat_rows = np.zeros(batch, dtype=bool)
                flat_rows[rows[flat]] = True
                retire(flat_rows)
                rows = np.flatnonzero(active)
                if not rows.size:
                    break
                total = int(count[rows].sum())
                grid = streaming_grid(
                    device.spec,
                    max(1, int(total * device.scale)),
                    items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
                )
                lo, hi = lo[~flat], hi[~flat]

            local = np.searchsorted(rows, cand_rows)
            buckets = self._bucket_of(cand_keys, lo[local], hi[local])
            hist = flat_histogram(local, buckets, rows.size, nb)
            device.launch_kernel(
                "BucketHistogram",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * total,
                bytes_written=rows.size * nb * 4.0,
                flops=cal.HISTOGRAM_OPS_PER_ELEM * total,
            )
            device.synchronize("sync_hist")
            device.memcpy_d2h("MemcpyDtoH(hist)", rows.size * nb * 4.0)
            device.host_compute(
                "host_scan", cal.HOST_SCAN_SECONDS * rows.size
            )
            # bucket offsets are scanned on the device before scattering —
            # one block per active row
            device.launch_kernel(
                "ScanBucketOffsets",
                grid_blocks=rows.size,
                block_threads=256,
                bytes_read=rows.size * nb * 4.0,
                bytes_written=rows.size * nb * 4.0,
                flops=float(rows.size * nb * 8),
                scalable=False,
            )
            device.synchronize("sync_scan")
            psum = inclusive_scan(hist, axis=1)
            target = np.asarray(
                find_target_bucket(psum, k_rem[rows]), dtype=np.int64
            )

            target_elem = target[local]
            win = buckets < target_elem
            keep = buckets == target_elem
            device.launch_kernel(
                "BucketFilter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * total,
                # the reference implementation scatters the whole candidate
                # array into grouped buckets, not only the surviving one
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * total,
                flops=cal.FILTER_OPS_PER_ELEM * total,
            )
            device.synchronize("sync_filter")
            if win.any():
                out_rows.append(cand_rows[win])
                out_keys.append(cand_keys[win])
                out_idx.append(cand_idx[win])
                k_rem[rows] -= np.bincount(
                    cand_rows[win], minlength=batch
                )[rows]
            cand_rows, cand_keys, cand_idx = (
                cand_rows[keep],
                cand_keys[keep],
                cand_idx[keep],
            )
            count[rows] = np.take_along_axis(hist, target[:, None], axis=1)[:, 0]
        else:  # iteration cap: remaining rows owe results to the terminal
            retire(active.copy())

        # one shared terminal sort covers every row that still owes results
        if term_rows:
            t_rows = np.concatenate(term_rows)
            t_keys = np.concatenate(term_keys)
            t_idx = np.concatenate(term_idx)
            # stable (row, key) order == per-row stable argsort by key
            order = np.lexsort((t_keys, t_rows))
            t_rows, t_keys, t_idx = t_rows[order], t_keys[order], t_idx[order]
            seg = np.bincount(t_rows, minlength=batch)
            mask = head_mask(seg, term_k)
            out_rows.append(t_rows[mask])
            out_keys.append(t_keys[mask])
            out_idx.append(t_idx[mask])
            counts_sorted = seg[seg > 0]
            comparators = sum(
                comparator_count_sort(next_pow2(max(2, int(c))))
                for c in counts_sorted
            )
            device.launch_kernel(
                "BucketTerminalSort",
                grid_blocks=int(counts_sorted.size),
                block_threads=256,
                bytes_read=8.0 * float(counts_sorted.sum()),
                bytes_written=8.0 * float(term_k.sum()),
                flops=cal.OPS_PER_COMPARATOR * comparators,
            )
            device.synchronize("sync_final")

        all_rows = np.concatenate(out_rows)
        totals = np.bincount(all_rows, minlength=batch)
        if not (totals == ctx.k).all():
            bad = int(np.flatnonzero(totals != ctx.k)[0])
            raise AssertionError(
                f"BucketSelect produced {int(totals[bad])} results for row "
                f"{bad}, expected {ctx.k}"
            )
        order = np.argsort(all_rows, kind="stable")
        return (
            np.concatenate(out_keys)[order].reshape(batch, ctx.k),
            np.concatenate(out_idx)[order].reshape(batch, ctx.k),
        )

    # ------------------------------------------------------------------ #
    # per-row reference loop (the pre-fusion execution)
    # ------------------------------------------------------------------ #
    def _select_row(
        self, ctx: RunContext, row_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        device = ctx.device
        cand_keys = row_keys
        cand_idx = np.arange(row_keys.shape[0], dtype=np.int64)
        k_rem = ctx.k
        won_keys: list[np.ndarray] = []
        won_idx: list[np.ndarray] = []

        for _ in range(self.max_iterations):
            count = cand_keys.shape[0]
            if k_rem == 0 or count <= max(self.terminal_size, k_rem):
                break
            grid = streaming_grid(
                device.spec,
                max(1, int(count * device.scale)),
                items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
            )
            # min/max reduction to fix the bucket boundaries
            lo = np.uint64(cand_keys.min())
            hi = np.uint64(cand_keys.max())
            device.launch_kernel(
                "MinMaxReduce",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * count,
                bytes_written=8.0,
                flops=2.0 * count,
            )
            device.synchronize("sync_minmax")
            device.memcpy_d2h("MemcpyDtoH(minmax)", 8.0)
            if lo == hi:
                break  # all candidates equal: any k_rem of them are results

            buckets = self._bucket_of(cand_keys, lo, hi)
            hist = digit_histogram(buckets, self.num_buckets)
            device.launch_kernel(
                "BucketHistogram",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=4.0 * count,
                bytes_written=self.num_buckets * 4.0,
                flops=cal.HISTOGRAM_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_hist")
            device.memcpy_d2h("MemcpyDtoH(hist)", self.num_buckets * 4.0)
            device.host_compute("host_scan", cal.HOST_SCAN_SECONDS)
            # bucket offsets are scanned on the device before scattering
            device.launch_kernel(
                "ScanBucketOffsets",
                grid_blocks=1,
                block_threads=256,
                bytes_read=self.num_buckets * 4.0,
                bytes_written=self.num_buckets * 4.0,
                flops=float(self.num_buckets * 8),
                scalable=False,
            )
            device.synchronize("sync_scan")
            psum = inclusive_scan(hist)
            target = int(find_target_bucket(psum, k_rem))

            winners, survivors = partition_three_way(
                cand_keys, cand_idx, buckets, target
            )
            device.launch_kernel(
                "BucketFilter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=8.0 * count,
                # the reference implementation scatters the whole candidate
                # array into grouped buckets, not only the surviving one
                bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * count,
                flops=cal.FILTER_OPS_PER_ELEM * count,
            )
            device.synchronize("sync_filter")
            won_keys.append(winners.keys)
            won_idx.append(winners.indices)
            k_rem -= winners.count
            cand_keys = survivors.keys
            cand_idx = survivors.indices

        if k_rem > 0:
            count = cand_keys.shape[0]
            order = np.argsort(cand_keys, kind="stable")[:k_rem]
            won_keys.append(cand_keys[order])
            won_idx.append(cand_idx[order])
            device.launch_kernel(
                "BucketTerminalSort",
                grid_blocks=1,
                block_threads=256,
                bytes_read=8.0 * count,
                bytes_written=8.0 * k_rem,
                flops=cal.OPS_PER_COMPARATOR
                * comparator_count_sort(next_pow2(max(2, count))),
            )
            device.synchronize("sync_final")
        keys = np.concatenate(won_keys)
        idx = np.concatenate(won_idx)
        return keys[: ctx.k], idx[: ctx.k]
