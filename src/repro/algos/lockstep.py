"""Round-by-round lockstep reference for the queue-select family.

:func:`repro.algos.queue_common.emulate_queue_select` processes elements in
vectorised chunks, refreshing the qualification threshold once per chunk —
fast, but an approximation of lockstep hardware, where the threshold
tightens at every flush.  This module is the ground truth it approximates:
one warp, one element per lane per round, the *actual* two-step ballot
insertion of Fig. 5 (via :func:`repro.primitives.warp.two_step_positions`)
for the shared queue and real per-lane queues for the Faiss discipline.

It is quadratic-ish in rounds and exists for verification, not speed: the
test suite cross-checks the fast emulation's results (must be identical —
both are exact top-k) and its event counts (the fast path may count
slightly more inserts, never fewer flushes than physics requires).
"""

from __future__ import annotations

import numpy as np

from .queue_common import QueueStats, sentinel_for
from ..primitives import two_step_positions

WARP = 32


class _Maintained:
    """Sorted maintained top-k of (key, index) pairs."""

    def __init__(self, k: int, dtype) -> None:
        self.k = k
        self.keys = np.full(k, sentinel_for(dtype), dtype=dtype)
        self.indices = np.full(k, -1, dtype=np.int64)

    @property
    def threshold(self):
        return self.keys[-1]

    def merge(self, cand_keys: np.ndarray, cand_idx: np.ndarray) -> None:
        if cand_keys.size == 0:
            return
        keys = np.concatenate([self.keys, cand_keys])
        idx = np.concatenate([self.indices, cand_idx])
        order = np.argsort(keys, kind="stable")[: self.k]
        self.keys = keys[order]
        self.indices = idx[order]


def lockstep_queue_select(
    keys: np.ndarray,
    k: int,
    *,
    mode: str,
    queue_len: int,
) -> tuple[np.ndarray, np.ndarray, QueueStats]:
    """Single-warp lockstep queue selection; returns (keys, indices, stats).

    ``mode='shared'`` runs the paper's two-step ballot insertion against a
    32-slot shared queue, flushing the moment the queue fills — including
    the mid-round flush that lets second-step lanes insert afterwards
    (Fig. 5).  ``mode='thread'`` keeps a ``queue_len``-slot private queue
    per lane and flushes all of them whenever any lane's queue fills.
    """
    if keys.ndim != 1:
        raise ValueError(f"lockstep reference takes one slice, got {keys.shape}")
    if mode not in ("shared", "thread"):
        raise ValueError(f"mode must be 'shared' or 'thread', got {mode!r}")
    if queue_len < 1:
        raise ValueError("queue_len must be >= 1")
    if mode == "shared" and queue_len < WARP:
        raise ValueError(
            "the shared queue must hold at least one warp's worth of "
            "candidates (the paper sets it to exactly 32) so a round "
            "never needs more than one flush"
        )
    n = keys.shape[0]
    stats = QueueStats()
    stats.rounds = -(-n // WARP)
    maintained = _Maintained(k, keys.dtype)
    flush_cost = stats.merge_cost_comparators(
        queue_len * (WARP if mode == "thread" else 1), k
    )

    if mode == "shared":
        queue_keys = np.empty(queue_len, dtype=keys.dtype)
        queue_idx = np.empty(queue_len, dtype=np.int64)
        fill = 0

        def flush() -> None:
            nonlocal fill
            stats.flushes += 1
            maintained.merge(queue_keys[:fill].copy(), queue_idx[:fill].copy())
            fill = 0

        for start in range(0, n, WARP):
            lane_keys = keys[start : start + WARP]
            lane_idx = np.arange(start, start + lane_keys.shape[0], dtype=np.int64)
            pred = lane_keys < maintained.threshold
            q = int(pred.sum())
            if not q:
                continue
            stats.inserts += q
            first, second, _ = two_step_positions(
                np.pad(pred, (0, WARP - pred.shape[0])), fill, queue_len
            )
            first = first[: lane_keys.shape[0]]
            second = second[: lane_keys.shape[0]]
            n_first = int(first.sum())
            queue_keys[fill : fill + n_first] = lane_keys[first]
            queue_idx[fill : fill + n_first] = lane_idx[first]
            fill += n_first
            if fill == queue_len:
                flush()
                n_second = int(second.sum())
                queue_keys[:n_second] = lane_keys[second]
                queue_idx[:n_second] = lane_idx[second]
                fill = n_second
        if fill:
            maintained.merge(queue_keys[:fill].copy(), queue_idx[:fill].copy())
    else:
        lane_fill = np.zeros(WARP, dtype=np.int64)
        lane_queue_keys = np.empty((WARP, queue_len), dtype=keys.dtype)
        lane_queue_idx = np.empty((WARP, queue_len), dtype=np.int64)

        def flush_all() -> None:
            stats.flushes += 1
            held = int(lane_fill.sum())
            if held:
                cand_keys = np.concatenate(
                    [lane_queue_keys[lane, : lane_fill[lane]] for lane in range(WARP)]
                )
                cand_idx = np.concatenate(
                    [lane_queue_idx[lane, : lane_fill[lane]] for lane in range(WARP)]
                )
                maintained.merge(cand_keys, cand_idx)
            lane_fill[:] = 0

        for start in range(0, n, WARP):
            lane_keys = keys[start : start + WARP]
            pred = lane_keys < maintained.threshold
            lanes_here = lane_keys.shape[0]
            for lane in range(lanes_here):
                if pred[lane]:
                    stats.inserts += 1
                    lane_queue_keys[lane, lane_fill[lane]] = lane_keys[lane]
                    lane_queue_idx[lane, lane_fill[lane]] = start + lane
                    lane_fill[lane] += 1
            if (lane_fill >= queue_len).any():
                flush_all()
        if lane_fill.any():
            flush_all()
            stats.flushes -= 1  # the drain is not a hardware flush

    stats.merge_comparators = stats.flushes * flush_cost
    order = np.argsort(maintained.keys, kind="stable")
    return maintained.keys[order], maintained.indices[order], stats
