"""Table 2 reproduction: speedup ranges over the Fig. 6 + Fig. 7 grids.

The paper summarises every (N, K, batch, distribution) measurement into
min-max speedup ranges for three comparisons:

=====  ============  ==============  =============  ===========
batch  distribution  AIR vs Radix    Grid vs Block  AIR vs SOTA
=====  ============  ==============  =============  ===========
1      uniform       2.02-21.48      1.09-880.6     1.62-6.81
1      normal        1.99-21.22      1.09-882.29    1.53-7.34
1      adversarial   1.98-10.78      1.09-875.11    1.44-5.0
100    uniform       13.54-574.17    1.11-9.82      1.56-27.43
100    normal        10.26-574.78    1.19-9.82      1.42-31.91
100    adversarial   8.01-540.15     1.14-9.83      1.38-26.71
=====  ============  ==============  =============  ===========

The reproduction asserts the orders of magnitude and orderings, not the
exact endpoints (EXPERIMENTS.md discusses the deviations).
"""

from __future__ import annotations

import csv

import pytest

from repro.bench import format_table, sweep, table2

from conftest import BATCH100_N_CAP, CAP, DISTRIBUTIONS


def run_grid():
    ns = [1 << p for p in (11, 13, 15, 17, 20, 23, 25, 30)]
    ks = (32, 256, 32768)
    result = sweep(
        distributions=DISTRIBUTIONS, ns=ns, ks=ks, batches=(1,), cap=CAP
    )
    batch100 = sweep(
        distributions=DISTRIBUTIONS,
        ns=[n for n in ns if n <= BATCH100_N_CAP],
        ks=ks,
        batches=(100,),
        cap=CAP,
    )
    for p in batch100.points:
        result.add(p)
    return result


@pytest.fixture(scope="module")
def grid():
    return run_grid()


def test_table2(benchmark, grid, out_dir):
    rows = benchmark.pedantic(table2, args=(grid,), iterations=1, rounds=1)
    headers = ["batch", "distribution", "AIR vs RadixSelect",
               "GridSelect vs BlockSelect", "AIR vs SOTA"]
    table_rows = [
        (
            r.batch,
            r.distribution,
            r.air_vs_radix.formatted(),
            r.grid_vs_block.formatted(),
            r.air_vs_sota.formatted(),
        )
        for r in rows
    ]
    print("\nTable 2 reproduction — speedup ranges")
    print(format_table(headers, table_rows))
    with (out_dir / "table2_speedup.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(table_rows)

    by_key = {(r.batch, r.distribution): r for r in rows}

    for (batch, dist), r in by_key.items():
        # AIR always beats RadixSelect, by at least ~1.5x everywhere
        assert r.air_vs_radix.low > 1.5
        # GridSelect vs BlockSelect: near-1 at the small end...
        assert r.grid_vs_block.low > 0.8
        if batch == 1:
            # ...hundreds of x at the large end (paper: up to 882x)
            assert r.grid_vs_block.high > 300
            # AIR vs RadixSelect peaks in the tens (paper: up to 21.5x)
            assert 8 < r.air_vs_radix.high < 60
        else:
            # batch 100: the serialisation gap (paper: up to 574x)
            assert r.air_vs_radix.high > 100
            # GridSelect vs BlockSelect capped by batch parallelism (~10x)
            assert 4 < r.grid_vs_block.high < 20
        # AIR vs the virtual SOTA: always >= ~1, single digits at batch 1
        assert r.air_vs_sota.low > 0.9
        assert r.air_vs_sota.high > 2

    # orderings the paper reports across rows
    assert (
        by_key[(1, "adversarial")].air_vs_radix.high
        <= by_key[(1, "uniform")].air_vs_radix.high
    ), "adversarial data narrows AIR's margin over RadixSelect (Table 2)"
    assert (
        by_key[(100, "uniform")].air_vs_sota.high
        > by_key[(1, "uniform")].air_vs_sota.high
    ), "batching amplifies AIR's lead over the serial baselines"
