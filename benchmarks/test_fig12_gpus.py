"""Fig. 12 reproduction: AIR Top-K / GridSelect / SOTA on A100, H100, A10.

The paper runs N = 2^30, uniform distribution, on three boards and finds:

* AIR Top-K is ~5x faster than SOTA on A100 and H100 and ~3x on A10;
* GridSelect beats AIR for K <= 128 on A100/H100 and K <= 512 on A10;
* AIR's time ratios across boards track their memory bandwidths
  (0.6 / 1.555 / 3.35 TB/s) because it is memory-bound.
"""

from __future__ import annotations

import csv

import pytest

from repro.bench import BASELINE_ALGORITHMS, format_table, format_time
from repro.device import A10, A100, H100
from repro.perf import simulate_topk

from conftest import CAP, FULL

N = 1 << 30
K_GRID = [1 << p for p in ((3, 5, 7, 9, 11) if not FULL else range(3, 12))]
SPECS = (A100, H100, A10)


def best_baseline(spec, k):
    times = []
    for algo in BASELINE_ALGORITHMS:
        try:
            times.append(
                simulate_topk(
                    algo, distribution="uniform", n=N, k=k, spec=spec, cap=CAP
                ).time
            )
        except Exception:
            continue
    return min(times)


def run_grid():
    rows = {}
    for spec in SPECS:
        for k in K_GRID:
            air = simulate_topk(
                "air_topk", distribution="uniform", n=N, k=k, spec=spec, cap=CAP
            ).time
            grid = simulate_topk(
                "grid_select", distribution="uniform", n=N, k=k, spec=spec, cap=CAP
            ).time
            rows[(spec.name, k)] = (air, grid, best_baseline(spec, k))
    return rows


def test_fig12(benchmark, out_dir):
    rows = benchmark.pedantic(run_grid, iterations=1, rounds=1)
    print(f"\nFig. 12 reproduction — running time on different GPUs, N=2^30")
    table = []
    for spec in SPECS:
        for k in K_GRID:
            air, grid, sota = rows[(spec.name, k)]
            table.append(
                (
                    spec.name,
                    k,
                    format_time(air),
                    format_time(grid),
                    format_time(sota),
                    f"{sota / air:.2f}x",
                )
            )
    print(
        format_table(
            ["GPU", "K", "AIR Top-K", "GridSelect", "SOTA", "AIR vs SOTA"], table
        )
    )
    with (out_dir / "fig12_gpus.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["gpu", "k", "air_s", "grid_s", "sota_s"])
        for (name, k), (air, grid, sota) in rows.items():
            writer.writerow([name, k, air, grid, sota])

    # AIR beats SOTA everywhere, by a factor of a few.  The paper reports
    # ~5x on A100/H100; our virtual SOTA still contains a healthy
    # RadixSelect at N = 2^30 (~2x behind AIR), where the paper's
    # correctness filter appears to drop it — excluding it recovers the
    # paper's magnitude (see EXPERIMENTS.md).
    for (name, k), (air, grid, sota) in rows.items():
        assert sota / air > 1.3, (name, k)
    a100_ratio = max(rows[("A100", k)][2] / rows[("A100", k)][0] for k in K_GRID)
    assert a100_ratio > 1.8

    no_radix = min(
        simulate_topk(
            algo, distribution="uniform", n=N, k=K_GRID[0], spec=A100, cap=CAP
        ).time
        for algo in BASELINE_ALGORITHMS
        if algo != "radix_select"
    )
    paper_style_ratio = no_radix / rows[("A100", K_GRID[0])][0]
    print(
        f"AIR vs SOTA on A100 at N=2^30: {a100_ratio:.2f}x including "
        f"RadixSelect, {paper_style_ratio:.2f}x without it (paper: ~5x)"
    )
    assert paper_style_ratio > 2.5

    # GridSelect wins at small K, loses at large K; the crossover K is
    # higher on the A10 than on the A100 (paper: 512 vs 128)
    def crossover(name):
        for k in K_GRID:
            air, grid, _ = rows[(name, k)]
            if air < grid:
                return k
        return max(K_GRID) * 2

    assert crossover("A10") >= crossover("A100")
    assert rows[("A100", K_GRID[0])][1] < rows[("A100", K_GRID[0])][0]
    assert rows[("A100", K_GRID[-1])][1] > rows[("A100", K_GRID[-1])][0]

    # AIR time tracks memory bandwidth across boards (Sec. 5.4)
    k = K_GRID[len(K_GRID) // 2]
    air_a100 = rows[("A100", k)][0]
    air_h100 = rows[("H100", k)][0]
    air_a10 = rows[("A10", k)][0]
    assert 1.6 < air_a100 / air_h100 < 2.7  # ~bandwidth ratio 2.15, paper: ~2x
    assert 2.0 < air_a10 / air_a100 < 3.5  # bandwidth ratio 2.6, paper: ~3x
