"""Fig. 10 reproduction: AIR Top-K with and without early stopping.

The paper reports up to 18.7% running-time improvement from the early-
stopping rule (Sec. 3.3): when the updated K equals the updated candidate
count, the remaining iterations degenerate to a gather.

The rule fires when the K-th element's tie group exactly fills the
remaining demand, which is guaranteed at K = N (the paper's motivating
trivial case) and common on tie-heavy data (quantised scores, duplicated
keys).  On continuous uniform data with K << N it fires rarely and the
ablation is a no-op — both regimes are reported below.
"""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro import topk
from repro.bench import format_table, format_time
from repro.datagen import generate


def quantised_workload(n: int, levels: int, seed: int) -> np.ndarray:
    """Scores quantised to a small value set — realistic for ranking
    pipelines and the tie-heavy regime that exercises early stopping."""
    rng = np.random.default_rng(seed)
    pool = np.sort(rng.standard_normal(levels).astype(np.float32))
    return rng.choice(pool, size=n)


def run_cases():
    cases = []
    # the trivial K = N family across sizes
    for p in (16, 18, 20):
        n = 1 << p
        data = generate("uniform", n, seed=p)[0]
        cases.append((f"uniform, K=N=2^{p}", data, n))
    # tie-heavy data with K at a tie boundary
    for levels in (16, 256):
        n = 1 << 18
        data = quantised_workload(n, levels, seed=levels)
        _, counts = np.unique(data, return_counts=True)
        k = int(counts[: levels // 4].sum())
        cases.append((f"quantised({levels} levels), K={k}", data, k))
    # continuous data, K << N: early stop rarely fires (control case)
    data = generate("uniform", 1 << 18, seed=99)[0]
    cases.append(("uniform, K=2048 (control)", data, 2048))

    rows = []
    for label, data, k in cases:
        on = topk(data, k, algo="air_topk")
        off = topk(data, k, algo="air_topk", params={"early_stop": False})
        gain = (off.time - on.time) / off.time
        rows.append((label, on.time, off.time, gain))
    return rows


def test_fig10(benchmark, out_dir):
    rows = benchmark.pedantic(run_cases, iterations=1, rounds=1)
    print("\nFig. 10 reproduction — early stopping ablation")
    print(
        format_table(
            ["workload", "with early stop", "without", "improvement"],
            [
                (label, format_time(a), format_time(b), f"{gain * 100:.1f}%")
                for label, a, b, gain in rows
            ],
        )
    )
    with (out_dir / "fig10_early_stop.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["workload", "with_s", "without_s", "improvement"])
        writer.writerows(rows)

    gains = {label: gain for label, *_, gain in rows}
    # early stopping never hurts
    assert all(g >= -0.01 for g in gains.values())
    # it pays off on the K=N family and the tie-heavy workloads
    kn_gains = [g for label, g in gains.items() if "K=N" in label]
    assert max(kn_gains) > 0.10, "paper reports up to 18.7%"
    tie_gains = [g for label, g in gains.items() if "quantised" in label]
    assert max(tie_gains) > 0.05
    # the control case is (near) neutral — the rule simply does not fire
    assert gains["uniform, K=2048 (control)"] < 0.05
