"""Fig. 6 reproduction: running time vs K for fixed N, batch size 1.

The paper's Fig. 6 is a 3x4 panel (three distributions x four N values)
plotting every algorithm's running time as K sweeps 2^3..2^20.  This
benchmark regenerates each panel as a table of simulated times and asserts
the paper's headline observations:

* sorting and partition-based methods are flat in K;
* partial-sorting methods climb steeply with K (O(log^2 K) networks) and
  drop out beyond their K caps (2048 for the Faiss family and GridSelect,
  256 for Bitonic Top-K);
* AIR Top-K is the fastest, or within a small factor of GridSelect at
  small K.
"""

from __future__ import annotations

import pytest

from repro.bench import ALL_ALGORITHMS, format_series_table, plot_sweep, sweep, write_csv

from conftest import CAP, DISTRIBUTIONS, k_grid, n_grid_fig6


def run_panel(distribution: str, n: int):
    return sweep(
        distributions=(distribution,),
        ns=(n,),
        ks=k_grid(),
        batches=(1,),
        cap=CAP,
    )


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("n", n_grid_fig6())
def test_fig6_panel(benchmark, distribution, n, out_dir):
    result = benchmark.pedantic(
        run_panel, args=(distribution, n), iterations=1, rounds=1
    )
    write_csv(
        result.points,
        out_dir / f"fig6_{distribution}_n{n.bit_length() - 1}.csv",
    )
    print(f"\nFig. 6 panel — {distribution}, N = 2^{n.bit_length() - 1}, batch 1")
    print(
        format_series_table(
            result,
            algos=ALL_ALGORITHMS,
            distribution=distribution,
            batch=1,
            vary="k",
            fixed={"n": n},
            x_label="K",
        )
    )
    print(
        plot_sweep(
            result,
            algos=ALL_ALGORITHMS,
            distribution=distribution,
            batch=1,
            vary="k",
            fixed={"n": n},
        )
    )

    # --- the paper's observations, asserted on the shape -----------------
    ks = [k for k in k_grid() if k <= n]

    def time_of(algo, k):
        return result.time_of(algo, distribution, n, k, 1)

    # partition-based methods are stable in K
    for algo in ("air_topk", "sort", "radix_select"):
        lo = time_of(algo, ks[0])
        hi = time_of(algo, max(k for k in ks if k <= n))
        assert hi < 4 * lo, f"{algo} should be near-flat in K"

    # partial-sorting methods climb with K within their supported range
    queue_ks = [k for k in ks if k <= 2048]
    if len(queue_ks) >= 2 and n > 1 << 16:
        assert time_of("block_select", queue_ks[-1]) > time_of(
            "block_select", queue_ks[0]
        )

    # K caps produce the missing points of the paper's panels
    if any(k > 2048 for k in ks):
        assert time_of("warp_select", min(k for k in ks if k > 2048)) is None
    if any(k > 256 for k in ks):
        assert time_of("bitonic_topk", min(k for k in ks if k > 256)) is None

    # AIR Top-K leads (GridSelect may edge it out at small K, Sec. 5.1)
    for k in ks:
        air = time_of("air_topk", k)
        best_baseline = result.sota_time(distribution, n, k, 1)
        if best_baseline is not None and n >= 1 << 15:
            assert air <= best_baseline * 1.05, (
                f"AIR should lead at N=2^{n.bit_length() - 1}, K={k}"
            )
