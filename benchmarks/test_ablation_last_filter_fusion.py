"""Ablation: fusing the last filtering kernel (paper Sec. 3.1, last ¶).

"It is possible to fuse the last filtering kernel too, but we do not adopt
this strategy in our experiments because it reduces performance for
adversarial distribution."

The mechanism: the in-kernel filter phase runs after a device-wide sync
and needs the final candidate list materialised, which forces the buffer
write the adaptive strategy would otherwise skip.  Under uniform data the
final candidates are few (the buffer is nearly free) and the saved launch
wins; under adversarial data the forced buffer is a quarter of the input,
scattered through one atomic counter — a clear loss.  This benchmark
reproduces the trade-off and hence the paper's configuration choice.
"""

from __future__ import annotations

import csv

import pytest

from repro import topk
from repro.bench import format_table, format_time
from repro.datagen import generate

N = 1 << 22
K = 2048


def run_sweep():
    rows = []
    for dist in ("uniform", "normal", "adversarial"):
        data = generate(dist, N, seed=7, adversarial_m=20)[0]
        plain = topk(data, K, algo="air_topk")
        fused = topk(data, K, algo="air_topk", params={"fuse_last_filter": True})
        rows.append(
            (
                dist,
                plain.time,
                plain.device.counters.kernel_launches,
                fused.time,
                fused.device.counters.kernel_launches,
                plain.time / fused.time,
            )
        )
    return rows


def test_last_filter_fusion(benchmark, out_dir):
    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    print(f"\nAblation — fusing the last filter kernel, N=2^22, K={K}")
    print(
        format_table(
            ["distribution", "4 kernels", "", "3 kernels (fused)", "", "fused speedup"],
            [
                (d, format_time(tp), f"{kp} launches", format_time(tf),
                 f"{kf} launches", f"{s:.2f}x")
                for d, tp, kp, tf, kf, s in rows
            ],
        )
    )
    with (out_dir / "ablation_last_filter_fusion.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["distribution", "plain_s", "plain_kernels", "fused_s",
             "fused_kernels", "fused_speedup"]
        )
        writer.writerows(rows)

    by = {d: s for d, *_, s in rows}
    launches = {d: (kp, kf) for d, _, kp, _, kf, _ in rows}
    # structural: fusing removes exactly one launch
    for d, (kp, kf) in launches.items():
        assert kp == 4 and kf == 3, d
    # the paper's trade-off: fusion helps smooth distributions...
    assert by["uniform"] > 1.0
    assert by["normal"] > 1.0
    # ...and hurts the adversarial one — why the paper does not adopt it
    assert by["adversarial"] < 1.0
