"""Fig. 9 reproduction: AIR Top-K with and without the adaptive strategy.

The paper runs radix-adversarial inputs with M = 10 and M = 20 shared
leading bits across a range of N, and reports the adaptive strategy
reaching 4.62x (M=10) and 6.53x (M=20) over the always-buffer variant,
with the speedup growing with N and with M.
"""

from __future__ import annotations

import csv

import pytest

from repro.bench import format_table, format_time
from repro.perf import simulate_topk

from conftest import CAP, FULL

K = 2048
N_GRID = [1 << p for p in ((20, 22, 24, 26, 28, 30) if FULL else (22, 25, 28, 30))]


def run_ablation(m: int):
    rows = []
    for n in N_GRID:
        on = simulate_topk(
            "air_topk", distribution="adversarial", n=n, k=K,
            adversarial_m=m, cap=CAP,
        )
        off = simulate_topk(
            "air_topk", distribution="adversarial", n=n, k=K,
            adversarial_m=m, cap=CAP, adaptive=False,
        )
        rows.append((n, on.time, off.time, off.time / on.time))
    return rows


@pytest.mark.parametrize("m", [10, 20])
def test_fig9(benchmark, m, out_dir):
    rows = benchmark.pedantic(run_ablation, args=(m,), iterations=1, rounds=1)
    print(f"\nFig. 9 reproduction — adaptive strategy, adversarial M={m}, K={K}")
    print(
        format_table(
            ["N", "adaptive", "without adaptive", "speedup"],
            [
                (f"2^{n.bit_length() - 1}", format_time(a), format_time(b), f"{s:.2f}x")
                for n, a, b, s in rows
            ],
        )
    )
    with (out_dir / f"fig9_adaptive_m{m}.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["n", "adaptive_s", "static_s", "speedup"])
        writer.writerows(rows)

    speedups = [s for *_, s in rows]
    # the strategy always helps under adversarial data
    assert min(speedups) > 1.2
    # the speedup grows with N (paper: larger data, more traffic saved)
    assert speedups[-1] >= speedups[0]
    # paper peaks: 4.62x (M=10) and 6.53x (M=20); match the magnitude
    if m == 10:
        assert 2.0 < max(speedups) < 7.0
    else:
        assert 3.0 < max(speedups) < 9.0


def test_fig9_m20_beats_m10(benchmark, out_dir):
    """A more concentrated distribution leaves more traffic to save."""
    n = 1 << 28

    def measure():
        ratios = {}
        for m in (10, 20):
            on = simulate_topk(
                "air_topk", distribution="adversarial", n=n, k=K,
                adversarial_m=m, cap=CAP,
            )
            off = simulate_topk(
                "air_topk", distribution="adversarial", n=n, k=K,
                adversarial_m=m, cap=CAP, adaptive=False,
            )
            ratios[m] = off.time / on.time
        return ratios

    ratios = benchmark.pedantic(measure, iterations=1, rounds=1)
    print(
        "\nFig. 9 cross-check — adaptive speedup at N=2^28: "
        f"M=10: {ratios[10]:.2f}x, M=20: {ratios[20]:.2f}x"
    )
    assert ratios[20] > ratios[10]
