"""Extension: the Dr. Top-K delegate hybrid over different bases.

The paper positions Dr. Top-K (Sec. 2.2) as orthogonal to its
contributions: "it involves two top-K computations and needs a base top-K
algorithm ... hence it benefits from a high-performance parallel top-K
algorithm."  This extension benchmark quantifies that claim on the
simulated device:

* wrapping a slow base (full sort, host-coordinated RadixSelect) the
  delegate reduction pays off heavily at large N;
* wrapping AIR Top-K, the hybrid still wins at very large N — the
  delegate reduction reads the input once where AIR reads it twice —
  which is exactly why the paper calls Dr. Top-K "orthogonal to and able
  to benefit from our new methods"; at small and medium N the extra
  phases lose to AIR's four bare kernels.
"""

from __future__ import annotations

import csv

import pytest

from repro.bench import format_table, format_time
from repro.perf import simulate_topk

from conftest import CAP, FULL

K = 256
BASES = ("sort", "radix_select", "air_topk", "grid_select")
N_GRID = [1 << p for p in ((20, 22, 24, 26, 28) if FULL else (20, 23, 26))]


def run_grid():
    rows = []
    for n in N_GRID:
        for base in BASES:
            hybrid = simulate_topk(
                "drtopk_hybrid",
                distribution="uniform",
                n=n,
                k=K,
                base=base,
                cap=CAP,
            )
            plain = simulate_topk(
                base, distribution="uniform", n=n, k=K, cap=CAP
            )
            rows.append((n, base, hybrid.time, plain.time, plain.time / hybrid.time))
    return rows


def test_hybrid_over_bases(benchmark, out_dir):
    rows = benchmark.pedantic(run_grid, iterations=1, rounds=1)
    print(f"\nExtension — Dr. Top-K hybrid over different bases, K={K} (uniform)")
    print(
        format_table(
            ["N", "base", "hybrid", "plain base", "hybrid speedup"],
            [
                (
                    f"2^{n.bit_length() - 1}",
                    base,
                    format_time(h),
                    format_time(p),
                    f"{s:.2f}x",
                )
                for n, base, h, p, s in rows
            ],
        )
    )
    with (out_dir / "ext_drtopk_hybrid.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["n", "base", "hybrid_s", "plain_s", "speedup"])
        writer.writerows(rows)

    by = {(n, base): s for n, base, *_ , s in rows}
    big = N_GRID[-1]
    small = N_GRID[0]
    # the hybrid transforms the slow bases at scale...
    assert by[(big, "sort")] > 3.0
    assert by[(big, "radix_select")] > 1.2
    # ...helps even AIR Top-K at very large N (one input read vs two) —
    # the paper's "orthogonal, benefits from our methods" claim...
    assert by[(big, "air_topk")] > 1.2
    # ...but the extra phases lose at small N, and the slow bases gain far
    # more than the fast ones
    assert by[(small, "air_topk")] < 1.0
    assert by[(big, "sort")] > 2 * by[(big, "air_topk")]
    # the hybrid inherits its base's speed: hybrid(air) beats hybrid(sort)
    times = {(n, base): h for n, base, h, *_ in rows}
    assert times[(big, "air_topk")] <= times[(big, "sort")]
