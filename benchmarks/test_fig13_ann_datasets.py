"""Fig. 13 reproduction: top-k on ANN distance arrays (DEEP1B / SIFT).

The paper's Sec. 5.5 builds distance arrays from two real ANN datasets
(DEEP1B: 9.99M 96-d descriptors; SIFT: 1M 128-d descriptors), averages
over 1000 queries, and sweeps N = 2^11..2^19 with K in {10, 100}.
Offline-unavailable datasets are substituted with clustered synthetic
vector sets of the same dimensionality (DESIGN.md Sec. 2); the top-k
input — a smooth, concentrated distance distribution — has the same
character.

Reported observations, asserted below:

* results are consistent with the synthetic benchmarks: AIR Top-K and
  GridSelect always beat the previous methods, with the gap growing in N;
* at K = 10 GridSelect often edges out AIR Top-K; at K = 100 AIR leads
  for small N.
"""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.bench import (
    ALL_ALGORITHMS,
    BASELINE_ALGORITHMS,
    format_table,
    format_time,
)
from repro.datagen import distance_array, make_dataset
from repro.perf import simulate_topk
from repro.verify import check_topk

from conftest import FULL

N_GRID = [1 << p for p in ((11, 13, 15, 17, 19) if not FULL else range(11, 20))]
K_VALUES = (10, 100)
QUERIES = 8 if not FULL else 32


def run_dataset(name: str):
    dataset = make_dataset(name, max(N_GRID), seed=13)
    results: dict[tuple[int, int, str], float] = {}
    for n in N_GRID:
        for k in K_VALUES:
            per_algo: dict[str, list[float]] = {a: [] for a in ALL_ALGORITHMS}
            for q in range(QUERIES):
                dists = distance_array(dataset, q, subset=n)
                for algo in ALL_ALGORITHMS:
                    run = simulate_topk(
                        algo,
                        distribution="ann",
                        n=n,
                        k=k,
                        data=dists,
                    )
                    per_algo[algo].append(run.time)
                    if q == 0:
                        check_topk(
                            dists[None, :], run.result.values, run.result.indices
                        )
            for algo, times in per_algo.items():
                results[(n, k, algo)] = float(np.mean(times))
    return results


@pytest.mark.parametrize("name", ["deep1b", "sift"])
def test_fig13(benchmark, name, out_dir):
    results = benchmark.pedantic(run_dataset, args=(name,), iterations=1, rounds=1)
    for k in K_VALUES:
        print(f"\nFig. 13 reproduction — {name}-like distances, K={k} "
              f"(mean of {QUERIES} queries)")
        rows = []
        for n in N_GRID:
            rows.append(
                [f"2^{n.bit_length() - 1}"]
                + [format_time(results[(n, k, a)]) for a in ALL_ALGORITHMS]
            )
        print(format_table(["N"] + list(ALL_ALGORITHMS), rows))
    with (out_dir / f"fig13_{name}.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["n", "k", "algo", "time_s"])
        for (n, k, algo), t in sorted(results.items()):
            writer.writerow([n, k, algo, t])

    for k in K_VALUES:
        for n in N_GRID:
            air = results[(n, k, "air_topk")]
            grid = results[(n, k, "grid_select")]
            ours = min(air, grid)
            sota = min(results[(n, k, a)] for a in BASELINE_ALGORITHMS)
            # our methods always lead (paper: "always faster than other
            # methods")
            assert ours < sota, (name, n, k)
        # the gap grows with N
        first_gap = min(
            results[(N_GRID[0], k, a)] for a in BASELINE_ALGORITHMS
        ) / min(results[(N_GRID[0], k, "air_topk")],
                results[(N_GRID[0], k, "grid_select")])
        last_gap = min(
            results[(N_GRID[-1], k, a)] for a in BASELINE_ALGORITHMS
        ) / min(results[(N_GRID[-1], k, "air_topk")],
                results[(N_GRID[-1], k, "grid_select")])
        assert last_gap > first_gap, (name, k)

    # K=10: GridSelect competitive with AIR for many N (paper's guideline)
    grid_wins = sum(
        results[(n, 10, "grid_select")] <= results[(n, 10, "air_topk")] * 1.1
        for n in N_GRID
    )
    assert grid_wins >= len(N_GRID) // 2
