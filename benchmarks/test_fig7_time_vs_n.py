"""Fig. 7 reproduction: running time vs N for fixed K, batch sizes 1 and 100.

The paper's Fig. 7 is a 3x6 panel (three distributions x {K=32, 256, 32768}
x {batch 1, 100}) plotting running time as N sweeps 2^11..2^30.  Asserted
observations:

* WarpSelect/BlockSelect curves rise much more sharply with N than the
  others at batch 1 (limited parallelism — one warp/block);
* partition-based baselines deteriorate under the radix-adversarial
  distribution while AIR Top-K does not;
* AIR Top-K and GridSelect lead at every large-N point.
"""

from __future__ import annotations

import pytest

from repro.bench import ALL_ALGORITHMS, format_series_table, plot_sweep, sweep, write_csv

from conftest import BATCH100_N_CAP, CAP, DISTRIBUTIONS, k_grid_fig7, n_grid_fig7


def run_panel(distribution: str, k: int, batch: int):
    ns = [
        n
        for n in n_grid_fig7()
        if n >= k and (batch == 1 or n <= BATCH100_N_CAP)
    ]
    return sweep(
        distributions=(distribution,),
        ns=ns,
        ks=(k,),
        batches=(batch,),
        cap=CAP,
    ), ns


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("k", k_grid_fig7())
@pytest.mark.parametrize("batch", [1, 100])
def test_fig7_panel(benchmark, distribution, k, batch, out_dir):
    result, ns = benchmark.pedantic(
        run_panel, args=(distribution, k, batch), iterations=1, rounds=1
    )
    write_csv(
        result.points,
        out_dir / f"fig7_{distribution}_k{k}_b{batch}.csv",
    )
    print(f"\nFig. 7 panel — {distribution}, K = {k}, batch {batch}")
    print(
        format_series_table(
            result,
            algos=ALL_ALGORITHMS,
            distribution=distribution,
            batch=batch,
            vary="n",
            fixed={"k": k},
            x_label="N",
        )
    )
    print(
        plot_sweep(
            result,
            algos=ALL_ALGORITHMS,
            distribution=distribution,
            batch=batch,
            vary="n",
            fixed={"k": k},
        )
    )

    def time_of(algo, n):
        return result.time_of(algo, distribution, n, k, batch)

    big = max(ns)
    small = min(ns)

    # AIR and GridSelect lead at the largest N
    air = time_of("air_topk", big)
    sota = result.sota_time(distribution, big, k, batch)
    if sota is not None:
        assert air < sota

    # batch 1: single-block Faiss methods blow up with N
    if batch == 1 and k <= 2048 and big >= 1 << 20:
        block_growth = time_of("block_select", big) / time_of("block_select", small)
        air_growth = air / time_of("air_topk", small)
        assert block_growth > 3 * air_growth

    # adversarial data hurts host-coordinated RadixSelect more than AIR
    if distribution == "adversarial" and big >= 1 << 20:
        assert time_of("radix_select", big) / air > 1.5
