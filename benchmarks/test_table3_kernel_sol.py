"""Table 3 reproduction: per-kernel Speed-of-Light analysis of AIR Top-K.

The paper profiles AIR at N = 2^30, K = 2048 with Nsight Compute:

==========================  ======  ==========  ===========
kernel call                 time %  memory SOL  compute SOL
==========================  ======  ==========  ===========
iteration_fused_kernel(1)   49.29%  91.27%      31.43%
iteration_fused_kernel(2)   50.30%  89.08%      44.69%
iteration_fused_kernel(3)    0.29%   8.22%      20.92%
last_filter_kernel           0.12%   4.68%      21.15%
==========================  ======  ==========  ===========

Reproduced conclusions: the first two fused kernels take ~all the time,
split about evenly; both sit near the memory roofline with compute well
below it — AIR Top-K is memory-bound (Sec. 5.2.1).
"""

from __future__ import annotations

import csv

import pytest

from repro.bench import format_table
from repro.perf import render_roofline, simulate_topk, sol_report

from conftest import CAP

N = 1 << 30
K = 2048


def run():
    return simulate_topk("air_topk", distribution="uniform", n=N, k=K, cap=CAP)


def test_table3(benchmark, out_dir):
    run_result = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = sol_report(run_result.device)
    print(f"\nTable 3 reproduction — AIR Top-K kernels at N=2^30, K={K}")
    print(
        format_table(
            ["Kernel Call", "Time Percentage", "Memory SOL", "Compute SOL"],
            [r.row() for r in rows],
        )
    )
    print("\nroofline view (the same story as the SOL columns):")
    print(render_roofline(run_result.device))
    with (out_dir / "table3_kernel_sol.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["kernel", "time_pct", "memory_sol", "compute_sol"])
        for r in rows:
            writer.writerow(
                [r.name, r.time_fraction, r.memory_sol, r.compute_sol]
            )

    by_name = {r.name: r for r in rows}
    k1 = by_name["iteration_fused_kernel(1)"]
    k2 = by_name["iteration_fused_kernel(2)"]
    k3 = by_name["iteration_fused_kernel(3)"]
    last = by_name["last_filter_kernel"]

    # the first two calls take the bulk of the time, split about evenly
    assert 0.40 < k1.time_fraction < 0.60
    assert 0.40 < k2.time_fraction < 0.60
    assert k3.time_fraction < 0.02
    assert last.time_fraction < 0.02

    # memory-bound: near the bandwidth roofline, compute well below
    for k in (k1, k2):
        assert k.memory_sol > 0.80, "paper: 89-91% memory SOL"
        assert 0.20 < k.compute_sol < 0.60, "paper: 31-45% compute SOL"
        assert k.compute_sol < k.memory_sol

    # the tail kernels barely touch the machine
    assert k3.memory_sol < 0.2
    assert last.memory_sol < 0.2
