"""Fig. 8 reproduction: execution timelines of RadixSelect vs AIR Top-K.

The paper profiles both methods at N = 2^23, K = 2048 and points at four
contrasts, all reproduced and asserted here:

1. RadixSelect's timeline has white spaces (host-device synchronisation,
   CPU processing); AIR Top-K's is tight.
2. RadixSelect transfers data between host and device (MemcpyHtoD /
   MemcpyDtoH); AIR Top-K has no such exchange.
3. AIR Top-K launches far fewer kernels.
4. RadixSelect's CalculateOccurrence runs much longer than AIR's
   iteration_fused_kernel.
"""

from __future__ import annotations

import pytest

from repro import topk
from repro.datagen import generate

N = 1 << 23
K = 2048


def run_both():
    data = generate("uniform", N, seed=88)[0]
    radix = topk(data, K, algo="radix_select")
    air = topk(data, K, algo="air_topk")
    return radix, air


@pytest.fixture(scope="module")
def runs():
    return run_both()


def test_fig8_timelines(benchmark, runs, out_dir):
    benchmark.pedantic(run_both, iterations=1, rounds=1)
    radix, air = runs
    print(f"\nFig. 8 reproduction — timelines at N=2^23, K={K} (uniform)")
    print("\n-- RadixSelect " + "-" * 60)
    print(radix.device.timeline.render())
    print("\n-- AIR Top-K " + "-" * 62)
    print(air.device.timeline.render())
    print(
        f"\nRadixSelect: {radix.time * 1e6:9.1f} us, "
        f"{radix.device.counters.kernel_launches} kernels, "
        f"{radix.device.counters.pcie_transfers} PCIe transfers, "
        f"{radix.device.counters.syncs} syncs"
    )
    print(
        f"AIR Top-K:   {air.time * 1e6:9.1f} us, "
        f"{air.device.counters.kernel_launches} kernels, "
        f"{air.device.counters.pcie_transfers} PCIe transfers, "
        f"{air.device.counters.syncs - 1} syncs"
    )
    (out_dir / "fig8_timelines.txt").write_text(
        "RadixSelect\n"
        + radix.device.timeline.render()
        + "\n\nAIR Top-K\n"
        + air.device.timeline.render()
        + "\n"
    )
    # chrome://tracing / Perfetto artifacts, the runnable analogue of the
    # paper's profiler screenshot
    from repro.device import write_chrome_trace

    write_chrome_trace(radix.device, out_dir / "fig8_radix_select.trace.json")
    write_chrome_trace(air.device, out_dir / "fig8_air_topk.trace.json")

    # observation 1: white space vs tight
    radix_idle = sum(b - a for a, b in radix.device.timeline.idle_gaps("gpu"))
    air_idle = sum(b - a for a, b in air.device.timeline.idle_gaps("gpu"))
    assert radix_idle / radix.time > 0.3, "RadixSelect GPU mostly waits on the host"
    assert air_idle / air.time < 0.25, "AIR keeps the GPU fed"

    # observation 2: PCIe traffic
    assert radix.device.counters.pcie_transfers >= 6
    assert air.device.counters.pcie_transfers == 0

    # observation 3: kernel launches
    assert air.device.counters.kernel_launches == 4
    assert radix.device.counters.kernel_launches > air.device.counters.kernel_launches

    # observation 4: RadixSelect spends longer in CalculateOccurrence than
    # AIR spends in one fused kernel (which does the same read PLUS the
    # previous iteration's filtering)
    occurrence = radix.device.kernel_stats["CalculateOccurrence"]
    fused = air.device.kernel_stats["iteration_fused_kernel(1)"]
    assert occurrence.time > fused.time
    assert radix.time / air.time > 2
