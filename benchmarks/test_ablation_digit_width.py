"""Ablation: radix digit width (paper Sec. 3.1).

The paper argues for b = 11 over b = 8: the fused block-level scan makes a
2048-entry histogram affordable, which cuts 32-bit selection from 4 passes
to 3 and the kernel count from 5 to 4.  This ablation sweeps the digit
width of AIR Top-K and confirms:

* the pass count is ceil(32/b), and each extra pass costs a full read of
  the surviving candidates (for uniform data, pass 2 re-reads the input);
* b = 11 beats b = 8 — the paper's choice — and stays on the optimum
  plateau, while very narrow digits (more passes) and very wide digits
  (histograms beyond one block's shared memory, modelled through the scan
  work) lose.
"""

from __future__ import annotations

import csv

import pytest

from repro import topk
from repro.bench import format_table, format_time
from repro.datagen import generate

WIDTHS = (4, 8, 11, 16)
N = 1 << 22


def run_sweep():
    rows = []
    for dist in ("uniform", "adversarial"):
        data = generate(dist, N, seed=6)[0]
        for bits in WIDTHS:
            r = topk(data, 2048, algo="air_topk", digit_bits=bits)
            rows.append(
                (
                    dist,
                    bits,
                    -(-32 // bits),
                    r.device.counters.kernel_launches,
                    r.time,
                    r.device.counters.bytes_total,
                )
            )
    return rows


def test_digit_width_ablation(benchmark, out_dir):
    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    print(f"\nAblation — AIR Top-K digit width at N=2^22, K=2048")
    print(
        format_table(
            ["distribution", "digit bits", "passes", "kernels", "time", "traffic"],
            [
                (d, b, p, kr, format_time(t), f"{tr / 1e6:.2f}MB")
                for d, b, p, kr, t, tr in rows
            ],
        )
    )
    with (out_dir / "ablation_digit_width.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["distribution", "digit_bits", "passes", "kernels", "time_s", "traffic"]
        )
        writer.writerows(rows)

    by = {(d, b): (p, kr, t, tr) for d, b, p, kr, t, tr in rows}

    # structural claims
    for (d, b), (p, kr, _, _) in by.items():
        assert p == -(-32 // b)
        assert kr == p + 1  # fused kernels + last filter

    for dist in ("uniform", "adversarial"):
        times = {b: by[(dist, b)][2] for b in WIDTHS}
        # the paper's b=11 beats b=8
        assert times[11] <= times[8], dist
        # and very narrow digits (8 passes of everything) lose clearly
        assert times[4] > times[11], dist

    # adversarial data amplifies the pass count: each pass re-reads N
    adv = {b: by[("adversarial", b)][3] for b in WIDTHS}
    assert adv[4] > 1.5 * adv[11]
