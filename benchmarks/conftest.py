"""Shared infrastructure for the figure/table reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper's
evaluation (Sec. 5): it runs the corresponding parameter sweep on the
simulated device, prints the same rows/series the paper reports, and writes
a CSV under ``benchmarks/out/``.

Two grid sizes are provided:

* the default grid covers every axis of the paper's experiment with a
  reduced number of points, so ``pytest benchmarks/ --benchmark-only``
  finishes in minutes;
* ``REPRO_BENCH_FULL=1`` switches to the paper's full grids (the artifact's
  run-k.sh/run-n.sh take ~17 hours on real hardware; the simulated full
  grid takes tens of minutes).

pytest-benchmark times one representative simulation per figure; the
scientific output is the printed simulated-time series (absolute wall time
of the simulator is not the reproduced quantity).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: where benchmark CSVs land
OUT_DIR = Path(__file__).parent / "out"

#: set REPRO_BENCH_FULL=1 to run the paper's full grids
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: elements materialised per run; larger problems use scaled execution
CAP = 1 << 20 if FULL else 1 << 18


def k_grid() -> list[int]:
    """Fig. 6 K axis: 2^3 .. 2^20 (reduced: every other power)."""
    powers = range(3, 21) if FULL else range(3, 21, 2)
    return [1 << p for p in powers]


def n_grid_fig6() -> list[int]:
    """Fig. 6 N values: 2^15, 2^20, 2^25, 2^30."""
    return [1 << 15, 1 << 20, 1 << 25, 1 << 30]


def n_grid_fig7() -> list[int]:
    """Fig. 7 N axis: 2^11 .. 2^30 (reduced: every third power)."""
    powers = range(11, 31) if FULL else range(11, 31, 3)
    return [1 << p for p in powers]


def k_grid_fig7() -> list[int]:
    """Fig. 7 K values: 2^5, 2^8, 2^15 (paper artifact's run-n.sh)."""
    return [32, 256, 32768]


#: batch-100 problems above this N exceed the reference codes' practical
#: envelope (device memory for the resident batch plus workspaces, and the
#: benchmark's runtime budget); the paper's batch-100 summary behaves as if
#: capped similarly — see EXPERIMENTS.md
BATCH100_N_CAP = 1 << 24

DISTRIBUTIONS = ("uniform", "normal", "adversarial")


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR
