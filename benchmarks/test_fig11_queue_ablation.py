"""Fig. 11 reproduction: GridSelect with per-thread queues vs shared queue.

The paper swaps GridSelect's shared queue (parallel two-step insertion)
for BlockSelect-style per-thread queues and measures up to 1.28x speedup
for the shared-queue design.  The win comes from flushing less often —
the shared queue only flushes when *all* 32 slots fill, while any single
hot thread queue forces a per-thread-queue flush — plus lower register
pressure.
"""

from __future__ import annotations

import csv

import pytest

from repro.bench import format_table, format_time
from repro.perf import simulate_topk

from conftest import CAP, FULL
from repro.datagen import generate
from repro.algos.queue_common import emulate_queue_select
from repro.primitives import encode

K = 256
N_GRID = [1 << p for p in ((18, 20, 22, 24, 26, 28, 30) if FULL else (20, 24, 27, 30))]


def run_ablation():
    rows = []
    for n in N_GRID:
        shared = simulate_topk(
            "grid_select", distribution="uniform", n=n, k=K, cap=CAP
        )
        thread = simulate_topk(
            "grid_select", distribution="uniform", n=n, k=K, cap=CAP,
            queue="thread",
        )
        rows.append((n, shared.time, thread.time, thread.time / shared.time))
    return rows


def test_fig11(benchmark, out_dir):
    rows = benchmark.pedantic(run_ablation, iterations=1, rounds=1)
    print(f"\nFig. 11 reproduction — GridSelect queue designs, K={K} (uniform)")
    print(
        format_table(
            ["N", "shared queue", "per-thread queues", "shared speedup"],
            [
                (f"2^{n.bit_length() - 1}", format_time(a), format_time(b), f"{s:.2f}x")
                for n, a, b, s in rows
            ],
        )
    )
    with (out_dir / "fig11_queue_ablation.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["n", "shared_s", "thread_s", "speedup"])
        writer.writerows(rows)

    speedups = [s for *_, s in rows]
    # the shared queue never loses at scale, peaking near the paper's 1.28x
    assert max(speedups) > 1.15
    assert max(speedups) < 1.8
    assert all(s > 0.9 for s in speedups)


def test_fig11_flush_mechanism(benchmark):
    """The mechanism: shared-queue flushes are far cheaper in aggregate.

    A per-thread-queue flush fires as soon as any lane's private queue
    fills and must sort *all* lanes' queues (lanes x queue_len elements);
    the shared queue flushes exactly per 32 accumulated candidates and
    sorts only those 32.  Within one warp (32 lanes) the per-thread
    variant also fires more often; at block width the dominant effect is
    the much larger per-flush network.  Both show up as comparator work.
    """

    def measure():
        keys = encode(generate("uniform", 1 << 16, seed=4))
        warp_shared = emulate_queue_select(
            keys, K, lanes=32, mode="shared", queue_len=32
        ).stats
        warp_thread = emulate_queue_select(
            keys, K, lanes=32, mode="thread", queue_len=2
        ).stats
        block_shared = emulate_queue_select(
            keys, K, lanes=128, mode="shared", queue_len=32
        ).stats
        block_thread = emulate_queue_select(
            keys, K, lanes=128, mode="thread", queue_len=2
        ).stats
        return warp_shared, warp_thread, block_shared, block_thread

    ws, wt, bs, bt = benchmark.pedantic(measure, iterations=1, rounds=1)
    print(
        f"\nWarp width:  shared {ws.flushes} flushes "
        f"({ws.merge_comparators} comparators) vs per-thread "
        f"{wt.flushes} flushes ({wt.merge_comparators} comparators)"
    )
    print(
        f"Block width: shared {bs.flushes} flushes "
        f"({bs.merge_comparators} comparators) vs per-thread "
        f"{bt.flushes} flushes ({bt.merge_comparators} comparators)"
    )
    assert ws.flushes < wt.flushes
    assert ws.merge_comparators < wt.merge_comparators
    assert bs.merge_comparators < bt.merge_comparators
