"""Ablation: the adaptive-strategy threshold alpha (paper Sec. 3.2).

The paper sets alpha = 128 "a value determined empirically" and derives
the lower bound alpha >= 4 (buffering costs 4C accesses against N reads).
This ablation sweeps alpha over the distributions that stress each side of
the trade-off and confirms:

* the theoretical bound: alpha < 4 is rejected by construction;
* adversarial data is insensitive to alpha (candidates never shrink below
  N/4, so no alpha in range ever buffers);
* uniform large-k data punishes very large alpha (profitable buffers get
  declined and the input is re-read);
* alpha = 128 sits on the flat optimum — the paper's empirical choice is
  reproduced;
* the alpha-controlled workspace bound (N/alpha) holds exactly.
"""

from __future__ import annotations

import csv

import pytest

from repro import topk
from repro.bench import format_table, format_time
from repro.datagen import generate

ALPHAS = (4.0, 16.0, 64.0, 128.0, 512.0, 4096.0)
N = 1 << 20


def run_sweep():
    rows = []
    workloads = [
        ("uniform, k=2048", generate("uniform", N, seed=1)[0], 2048),
        ("uniform, k=131072", generate("uniform", N, seed=2)[0], 1 << 17),
        ("normal, k=2048", generate("normal", N, seed=3)[0], 2048),
        ("adversarial(M=20), k=2048", generate("adversarial", N, seed=4)[0], 2048),
    ]
    for label, data, k in workloads:
        for alpha in ALPHAS:
            r = topk(data, k, algo="air_topk", alpha=alpha)
            rows.append(
                (
                    label,
                    alpha,
                    r.time,
                    r.device.counters.bytes_total,
                    r.device.counters.peak_workspace_bytes,
                )
            )
    return rows


def test_alpha_ablation(benchmark, out_dir):
    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    print(f"\nAblation — adaptive threshold alpha at N=2^20")
    print(
        format_table(
            ["workload", "alpha", "time", "traffic", "workspace"],
            [
                (
                    label,
                    f"{alpha:g}",
                    format_time(t),
                    f"{traffic / 1e6:.2f}MB",
                    f"{ws / 1e3:.0f}KB",
                )
                for label, alpha, t, traffic, ws in rows
            ],
        )
    )
    with (out_dir / "ablation_alpha.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["workload", "alpha", "time_s", "traffic_bytes", "ws_bytes"])
        writer.writerows(rows)

    by = {(label, alpha): (t, traffic, ws) for label, alpha, t, traffic, ws in rows}

    # workspace bound: exactly two double-buffered N/alpha-element buffers
    for (label, alpha), (_, _, ws) in by.items():
        assert ws <= 2 * 8.0 * N / alpha + 1, (label, alpha)

    # adversarial data: alpha-insensitive (nothing is ever buffered)
    adv = [by[("adversarial(M=20), k=2048", a)][1] for a in ALPHAS]
    assert max(adv) / min(adv) < 1.05

    # very large alpha declines profitable buffers on large-k uniform data
    big_k = "uniform, k=131072"
    assert by[(big_k, 4096.0)][1] >= by[(big_k, 4.0)][1]

    # alpha = 128 (the paper's choice) is on the flat optimum for the
    # paper's small-k/N regime; for k/N as large as 1/8 the C < N/alpha
    # rule declines buffers a smaller alpha would profitably take, costing
    # ~10-15% — the trade-off the paper tuned alpha = 128 against
    for label in {label for label, *_ in rows}:
        best = min(by[(label, a)][0] for a in ALPHAS)
        slack = 1.20 if "131072" in label else 1.05
        assert by[(label, 128.0)][0] <= best * slack, label
