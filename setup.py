"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` falls back to the legacy `setup.py develop` path when no
[build-system] table is present; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
